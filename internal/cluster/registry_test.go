package cluster

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

// fakeClock gives the registry a deterministic, manually advanced clock.
// It carries its own lock so a test can advance time while a dispatcher
// goroutine is blocked inside the registry.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = c.t.Add(d)
}
func newFakeClock() *fakeClock { return &fakeClock{t: time.Unix(1000, 0)} }
func testRegistry(c *fakeClock) *Registry {
	r := NewRegistry()
	r.now = c.now
	return r
}

func mustAcquire(t *testing.T, r *Registry) Lease {
	t.Helper()
	l, err := r.Acquire(context.Background())
	if err != nil {
		t.Fatalf("Acquire: %v", err)
	}
	return l
}

// TestAcquireLeastLoadedTieBreaking pins the dispatch policy: lowest
// in-flight count wins, ties break on the lexicographically smallest
// worker id, so dispatch order is deterministic.
func TestAcquireLeastLoadedTieBreaking(t *testing.T) {
	r := testRegistry(newFakeClock())
	r.Upsert(RegisterRequest{ID: "w-b", URL: "http://b", Capacity: 2})
	r.Upsert(RegisterRequest{ID: "w-a", URL: "http://a", Capacity: 2})
	r.Upsert(RegisterRequest{ID: "w-c", URL: "http://c", Capacity: 2})

	// All idle: ties on inflight=0 resolve to the smallest id, then the
	// next smallest, round-robin-by-load.
	want := []string{"w-a", "w-b", "w-c", "w-a", "w-b", "w-c"}
	var leases []Lease
	for i, w := range want {
		l := mustAcquire(t, r)
		if l.ID != w {
			t.Fatalf("acquire %d: got %s, want %s", i, l.ID, w)
		}
		leases = append(leases, l)
	}

	// Releasing only w-b makes it strictly least-loaded.
	leases[1].Release()
	if l := mustAcquire(t, r); l.ID != "w-b" {
		t.Fatalf("after release: got %s, want w-b", l.ID)
	}
}

// TestAcquireRespectsCapacity: a saturated registry blocks Acquire until a
// slot frees, and the per-worker in-flight cap is never exceeded.
func TestAcquireRespectsCapacity(t *testing.T) {
	r := testRegistry(newFakeClock())
	r.Upsert(RegisterRequest{ID: "w-a", URL: "http://a", Capacity: 1})
	l1 := mustAcquire(t, r)

	got := make(chan Lease)
	go func() {
		l, err := r.Acquire(context.Background())
		if err != nil {
			t.Error("blocked Acquire:", err)
		}
		got <- l
	}()
	select {
	case <-got:
		t.Fatal("Acquire returned with the only worker saturated")
	case <-time.After(20 * time.Millisecond):
	}
	l1.Release()
	select {
	case l := <-got:
		if l.ID != "w-a" {
			t.Fatalf("unblocked lease on %s, want w-a", l.ID)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Acquire did not unblock on Release")
	}
}

// TestAcquireNoWorkers: an empty registry fails fast with ErrNoWorkers
// (the caller falls back to local execution) rather than blocking.
func TestAcquireNoWorkers(t *testing.T) {
	r := testRegistry(newFakeClock())
	if _, err := r.Acquire(context.Background()); !errors.Is(err, ErrNoWorkers) {
		t.Fatalf("Acquire on empty registry: %v, want ErrNoWorkers", err)
	}
	// And after the last worker is removed mid-wait, a blocked Acquire
	// resolves to ErrNoWorkers instead of waiting forever.
	r.Upsert(RegisterRequest{ID: "w-a", Capacity: 1})
	l := mustAcquire(t, r)
	done := make(chan error, 1)
	go func() {
		_, err := r.Acquire(context.Background())
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	_ = l
	r.Remove("w-a")
	select {
	case err := <-done:
		if !errors.Is(err, ErrNoWorkers) {
			t.Fatalf("blocked Acquire after removal: %v, want ErrNoWorkers", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Acquire did not observe the registry emptying")
	}
}

// TestAcquireContextCancel: cancelling ctx unblocks a saturated wait.
func TestAcquireContextCancel(t *testing.T) {
	r := testRegistry(newFakeClock())
	r.Upsert(RegisterRequest{ID: "w-a", Capacity: 1})
	mustAcquire(t, r)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := r.Acquire(ctx)
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("cancelled Acquire: %v, want context.Canceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Acquire did not observe cancellation")
	}
}

// TestExpireDead: workers outliving the liveness window are removed, their
// gone channel closes, and a fresh heartbeat re-admits them.
func TestExpireDead(t *testing.T) {
	clock := newFakeClock()
	r := testRegistry(clock)
	r.Upsert(RegisterRequest{ID: "w-a", Capacity: 1})
	r.Upsert(RegisterRequest{ID: "w-b", Capacity: 1})
	lease := mustAcquire(t, r) // w-a

	clock.advance(2 * time.Second)
	r.Upsert(RegisterRequest{ID: "w-b", Capacity: 1}) // heartbeat
	expired := r.ExpireDead(time.Second)
	if len(expired) != 1 || expired[0] != "w-a" {
		t.Fatalf("expired = %v, want [w-a]", expired)
	}
	select {
	case <-lease.Gone:
	default:
		t.Fatal("expired worker's gone channel not closed")
	}
	lease.Release() // slot died with the worker; must not panic or underflow
	if n := r.Len(); n != 1 {
		t.Fatalf("registry has %d workers after expiry, want 1", n)
	}
	if st := r.Upsert(RegisterRequest{ID: "w-a", Capacity: 1}); !st.IsNew {
		t.Fatal("re-registered expired worker should be new again")
	}
}

// TestStaleLeaseReleaseIgnoresNewIncarnation: a lease acquired on an
// expired worker incarnation must not decrement the in-flight count of a
// re-registered incarnation with the same id — that would let dispatchers
// overrun the fresh worker's capacity.
func TestStaleLeaseReleaseIgnoresNewIncarnation(t *testing.T) {
	r := testRegistry(newFakeClock())
	r.Upsert(RegisterRequest{ID: "w-a", Capacity: 1})
	stale := mustAcquire(t, r)
	r.Remove("w-a") // observed dead mid-batch

	// The worker comes back (heartbeat after restart) and its only slot is
	// acquired by a new dispatcher.
	r.Upsert(RegisterRequest{ID: "w-a", Capacity: 1})
	fresh := mustAcquire(t, r)

	// The old batch finally errors out and releases its stale lease; the
	// fresh incarnation must still be saturated.
	stale.Release()
	if snap := r.Snapshot(); snap[0].Inflight != 1 {
		t.Fatalf("stale release drained the new incarnation: inflight = %d, want 1", snap[0].Inflight)
	}
	fresh.Release()
	if snap := r.Snapshot(); snap[0].Inflight != 0 {
		t.Fatalf("matching release did not free the slot: inflight = %d", snap[0].Inflight)
	}
}

// TestBreakerOpensAndRecovers walks one worker through the full breaker
// lifecycle: consecutive failures open it (dispatch falls back to the
// local pool instead of blocking), the cooldown makes it half-open with
// exactly one probe slot, a failed probe re-opens it, and a successful
// probe closes it with the failure count reset.
func TestBreakerOpensAndRecovers(t *testing.T) {
	clock := newFakeClock()
	r := testRegistry(clock)
	r.SetBreaker(3, 5*time.Second)
	r.Upsert(RegisterRequest{ID: "w-a", URL: "http://a", Capacity: 2})

	// Three consecutive failures; only the third reports the transition.
	for i := 0; i < 3; i++ {
		l := mustAcquire(t, r)
		opened := l.ReportFailure()
		l.Release()
		if want := i == 2; opened != want {
			t.Fatalf("failure %d: opened = %v, want %v", i, opened, want)
		}
	}
	if st := r.Snapshot()[0].Breaker; st != "open" {
		t.Fatalf("breaker after threshold = %q, want open", st)
	}
	// With the only worker's breaker open, Acquire must fall through to
	// ErrNoWorkers (local execution), not block: time heals breakers, and
	// no broadcast is coming.
	if _, err := r.Acquire(context.Background()); !errors.Is(err, ErrNoWorkers) {
		t.Fatalf("Acquire with breaker open: %v, want ErrNoWorkers", err)
	}

	// After the cooldown the worker is half-open: one probe, no more.
	clock.advance(5 * time.Second)
	if st := r.Snapshot()[0].Breaker; st != "half-open" {
		t.Fatalf("breaker after cooldown = %q, want half-open", st)
	}
	probe := mustAcquire(t, r)
	if _, ok := r.TryAcquire(""); ok {
		t.Fatal("second lease granted while the half-open probe is outstanding")
	}
	// A failed probe re-opens the breaker; that is not a fresh transition.
	if probe.ReportFailure() {
		t.Fatal("failed probe reported a fresh breaker-open transition")
	}
	probe.Release()
	if _, err := r.Acquire(context.Background()); !errors.Is(err, ErrNoWorkers) {
		t.Fatalf("Acquire after failed probe: %v, want ErrNoWorkers", err)
	}

	// Next cooldown: a successful probe closes the breaker for good.
	clock.advance(5 * time.Second)
	probe = mustAcquire(t, r)
	probe.ReportSuccess()
	probe.Release()
	snap := r.Snapshot()[0]
	if snap.Breaker != "closed" || snap.Failures != 0 {
		t.Fatalf("after successful probe: breaker=%q failures=%d, want closed/0", snap.Breaker, snap.Failures)
	}
	// Normal dispatch resumes at full capacity.
	mustAcquire(t, r)
	mustAcquire(t, r)
}

// TestBreakerOpenUnblocksWaiters: a dispatcher blocked on the cond var
// behind a saturated worker must fall through to ErrNoWorkers the moment
// that worker's breaker opens — not sleep out the cooldown on a wait that
// no broadcast will resolve.
func TestBreakerOpenUnblocksWaiters(t *testing.T) {
	r := testRegistry(newFakeClock())
	r.SetBreaker(1, time.Minute)
	r.Upsert(RegisterRequest{ID: "w-a", URL: "http://a", Capacity: 1})
	l := mustAcquire(t, r)

	done := make(chan error, 1)
	go func() {
		_, err := r.Acquire(context.Background())
		done <- err
	}()
	time.Sleep(10 * time.Millisecond) // let the dispatcher park on the cond var

	if !l.ReportFailure() {
		t.Fatal("threshold-1 failure did not open the breaker")
	}
	select {
	case err := <-done:
		if !errors.Is(err, ErrNoWorkers) {
			t.Fatalf("blocked Acquire after breaker opened: %v, want ErrNoWorkers", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("dispatcher stayed blocked after the last worker's breaker opened")
	}
}

// TestExpireDeadWhileAcquireBlocked: liveness expiry fires while a
// dispatcher is blocked on the cond var. The dispatcher must not
// deadlock: it falls through to a surviving worker when one frees a
// slot, and to ErrNoWorkers (the local pool) when the last worker
// expires mid-wait.
func TestExpireDeadWhileAcquireBlocked(t *testing.T) {
	clock := newFakeClock()
	r := testRegistry(clock)
	r.Upsert(RegisterRequest{ID: "w-a", URL: "http://a", Capacity: 1})
	r.Upsert(RegisterRequest{ID: "w-b", URL: "http://b", Capacity: 1})
	mustAcquire(t, r)       // saturate w-a
	lb := mustAcquire(t, r) // saturate w-b

	got := make(chan Lease, 1)
	fail := make(chan error, 1)
	go func() {
		l, err := r.Acquire(context.Background())
		if err != nil {
			fail <- err
			return
		}
		got <- l
	}()
	time.Sleep(10 * time.Millisecond) // park it on the cond var

	// w-a misses its liveness window while w-b keeps heartbeating.
	clock.advance(2 * time.Second)
	r.Upsert(RegisterRequest{ID: "w-b", URL: "http://b", Capacity: 1})
	if expired := r.ExpireDead(time.Second); len(expired) != 1 || expired[0] != "w-a" {
		t.Fatalf("expired = %v, want [w-a]", expired)
	}

	// The waiter rides out the expiry and lands on the survivor as soon
	// as its slot frees.
	lb.Release()
	var survivor Lease
	select {
	case survivor = <-got:
		if survivor.ID != "w-b" {
			t.Fatalf("dispatcher landed on %s, want survivor w-b", survivor.ID)
		}
	case err := <-fail:
		t.Fatalf("dispatcher errored across expiry: %v", err)
	case <-time.After(2 * time.Second):
		t.Fatal("dispatcher deadlocked across a mid-wait expiry")
	}

	// Same setup, but this time the *last* worker expires mid-wait: the
	// dispatcher must resolve to ErrNoWorkers for the local-pool fallback.
	go func() {
		_, err := r.Acquire(context.Background())
		fail <- err
	}()
	time.Sleep(10 * time.Millisecond)
	clock.advance(2 * time.Second)
	if expired := r.ExpireDead(time.Second); len(expired) != 1 || expired[0] != "w-b" {
		t.Fatalf("expired = %v, want [w-b]", expired)
	}
	select {
	case err := <-fail:
		if !errors.Is(err, ErrNoWorkers) {
			t.Fatalf("blocked Acquire after last expiry: %v, want ErrNoWorkers", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("dispatcher deadlocked after the last worker expired mid-wait")
	}
	_ = survivor
}

// TestTryAcquireExcludesAndNeverBlocks pins the hedge-dispatch contract:
// TryAcquire skips the excluded straggler, picks any other free worker,
// and reports failure immediately instead of waiting.
func TestTryAcquireExcludesAndNeverBlocks(t *testing.T) {
	r := testRegistry(newFakeClock())
	if _, ok := r.TryAcquire(""); ok {
		t.Fatal("TryAcquire on an empty registry granted a lease")
	}
	r.Upsert(RegisterRequest{ID: "w-a", URL: "http://a", Capacity: 1})
	if _, ok := r.TryAcquire("w-a"); ok {
		t.Fatal("TryAcquire granted a lease on the excluded worker")
	}
	r.Upsert(RegisterRequest{ID: "w-b", URL: "http://b", Capacity: 1})
	l, ok := r.TryAcquire("w-a")
	if !ok || l.ID != "w-b" {
		t.Fatalf("TryAcquire(exclude w-a) = %v/%v, want a w-b lease", l.ID, ok)
	}
	// w-b now saturated and w-a excluded: nothing left, still no blocking.
	if _, ok := r.TryAcquire("w-a"); ok {
		t.Fatal("TryAcquire granted a lease with every eligible worker saturated")
	}
}

// TestSnapshotSorted: the public view is sorted by id with live load.
func TestSnapshotSorted(t *testing.T) {
	clock := newFakeClock()
	r := testRegistry(clock)
	r.Upsert(RegisterRequest{ID: "w-b", URL: "http://b", Capacity: 3})
	r.Upsert(RegisterRequest{ID: "w-a", URL: "http://a", Capacity: 0}) // clamped to 1
	mustAcquire(t, r)                                                  // w-a (least loaded, smallest id)

	snap := r.Snapshot()
	if len(snap) != 2 || snap[0].ID != "w-a" || snap[1].ID != "w-b" {
		t.Fatalf("snapshot order = %+v, want [w-a w-b]", snap)
	}
	if snap[0].Capacity != 1 {
		t.Fatalf("capacity 0 should clamp to 1, got %d", snap[0].Capacity)
	}
	if snap[0].Inflight != 1 || snap[1].Inflight != 0 {
		t.Fatalf("inflight = %d/%d, want 1/0", snap[0].Inflight, snap[1].Inflight)
	}
}

// TestDrainFencesThenReleases pins the coordinator-side drain lifecycle: a
// draining heartbeat fences the worker from new leases while its in-flight
// batch finishes, and the first draining heartbeat that observes zero
// in-flight removes the worker and acks Released.
func TestDrainFencesThenReleases(t *testing.T) {
	r := testRegistry(newFakeClock())
	r.Upsert(RegisterRequest{ID: "w-a", URL: "http://a", Capacity: 2})
	r.Upsert(RegisterRequest{ID: "w-b", URL: "http://b", Capacity: 1})
	lease := mustAcquire(t, r) // least-loaded tie breaks to w-a
	if lease.ID != "w-a" {
		t.Fatalf("acquired %s, want w-a", lease.ID)
	}

	st := r.Upsert(RegisterRequest{ID: "w-a", URL: "http://a", Capacity: 2, Draining: true})
	if st.IsNew || st.Released || st.Drained {
		t.Fatalf("draining heartbeat with a batch in flight = %+v, want fenced but retained", st)
	}
	// Fenced: the free slot on w-a is invisible; every new lease lands on
	// w-b despite w-a having spare capacity.
	other := mustAcquire(t, r)
	if other.ID != "w-b" {
		t.Fatalf("acquired %s while w-a drains, want w-b", other.ID)
	}
	if _, ok := r.TryAcquire(""); ok {
		t.Fatal("TryAcquire found a slot with w-a draining and w-b saturated")
	}
	if slots, free := r.Capacity(); slots != 1 || free != 0 {
		t.Fatalf("Capacity = (%d, %d), want (1, 0): draining workers contribute no slots", slots, free)
	}

	// The drained flag is visible to /healthz.
	snap := r.Snapshot()
	if !snap[0].Draining || snap[1].Draining {
		t.Fatalf("Snapshot draining flags = %v/%v, want w-a only", snap[0].Draining, snap[1].Draining)
	}

	// Last in-flight batch finishes; the next draining heartbeat releases.
	lease.Release()
	st = r.Upsert(RegisterRequest{ID: "w-a", URL: "http://a", Capacity: 2, Draining: true})
	if !st.Released || !st.Drained {
		t.Fatalf("idle draining heartbeat = %+v, want Released+Drained", st)
	}
	if n := r.Len(); n != 1 {
		t.Fatalf("registry has %d workers after drain, want 1", n)
	}
}

// TestDrainUnknownWorkerNeverResurrects: a draining heartbeat from a worker
// the registry does not know (it already expired, or was already released)
// must ack Released without re-registering it.
func TestDrainUnknownWorkerNeverResurrects(t *testing.T) {
	r := testRegistry(newFakeClock())
	st := r.Upsert(RegisterRequest{ID: "w-gone", URL: "http://gone", Capacity: 1, Draining: true})
	if !st.Released || st.IsNew || st.Drained {
		t.Fatalf("unknown draining worker = %+v, want Released only", st)
	}
	if n := r.Len(); n != 0 {
		t.Fatalf("registry resurrected a draining worker (len %d)", n)
	}
}

// TestDrainAbortedByFreshHeartbeat: a worker that starts draining and then
// changes its mind (restarted without the drain latch) re-enters rotation
// on its first non-draining heartbeat.
func TestDrainAbortedByFreshHeartbeat(t *testing.T) {
	r := testRegistry(newFakeClock())
	r.Upsert(RegisterRequest{ID: "w-a", URL: "http://a", Capacity: 1})
	lease := mustAcquire(t, r)
	r.Upsert(RegisterRequest{ID: "w-a", URL: "http://a", Capacity: 1, Draining: true})
	r.Upsert(RegisterRequest{ID: "w-a", URL: "http://a", Capacity: 1}) // drain aborted
	lease.Release()
	if got := mustAcquire(t, r); got.ID != "w-a" {
		t.Fatalf("acquired %s after aborted drain, want w-a", got.ID)
	}
	if slots, free := r.Capacity(); slots != 1 || free != 0 {
		t.Fatalf("Capacity = (%d, %d) after aborted drain with one lease out, want (1, 0)", slots, free)
	}
}
