package cluster

import (
	"context"
	"errors"
	"testing"
	"time"
)

// fakeClock gives the registry a deterministic, manually advanced clock.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }
func newFakeClock() *fakeClock               { return &fakeClock{t: time.Unix(1000, 0)} }
func testRegistry(c *fakeClock) *Registry {
	r := NewRegistry()
	r.now = c.now
	return r
}

func mustAcquire(t *testing.T, r *Registry) Lease {
	t.Helper()
	l, err := r.Acquire(context.Background())
	if err != nil {
		t.Fatalf("Acquire: %v", err)
	}
	return l
}

// TestAcquireLeastLoadedTieBreaking pins the dispatch policy: lowest
// in-flight count wins, ties break on the lexicographically smallest
// worker id, so dispatch order is deterministic.
func TestAcquireLeastLoadedTieBreaking(t *testing.T) {
	r := testRegistry(newFakeClock())
	r.Upsert(RegisterRequest{ID: "w-b", URL: "http://b", Capacity: 2})
	r.Upsert(RegisterRequest{ID: "w-a", URL: "http://a", Capacity: 2})
	r.Upsert(RegisterRequest{ID: "w-c", URL: "http://c", Capacity: 2})

	// All idle: ties on inflight=0 resolve to the smallest id, then the
	// next smallest, round-robin-by-load.
	want := []string{"w-a", "w-b", "w-c", "w-a", "w-b", "w-c"}
	var leases []Lease
	for i, w := range want {
		l := mustAcquire(t, r)
		if l.ID != w {
			t.Fatalf("acquire %d: got %s, want %s", i, l.ID, w)
		}
		leases = append(leases, l)
	}

	// Releasing only w-b makes it strictly least-loaded.
	leases[1].Release()
	if l := mustAcquire(t, r); l.ID != "w-b" {
		t.Fatalf("after release: got %s, want w-b", l.ID)
	}
}

// TestAcquireRespectsCapacity: a saturated registry blocks Acquire until a
// slot frees, and the per-worker in-flight cap is never exceeded.
func TestAcquireRespectsCapacity(t *testing.T) {
	r := testRegistry(newFakeClock())
	r.Upsert(RegisterRequest{ID: "w-a", URL: "http://a", Capacity: 1})
	l1 := mustAcquire(t, r)

	got := make(chan Lease)
	go func() {
		l, err := r.Acquire(context.Background())
		if err != nil {
			t.Error("blocked Acquire:", err)
		}
		got <- l
	}()
	select {
	case <-got:
		t.Fatal("Acquire returned with the only worker saturated")
	case <-time.After(20 * time.Millisecond):
	}
	l1.Release()
	select {
	case l := <-got:
		if l.ID != "w-a" {
			t.Fatalf("unblocked lease on %s, want w-a", l.ID)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Acquire did not unblock on Release")
	}
}

// TestAcquireNoWorkers: an empty registry fails fast with ErrNoWorkers
// (the caller falls back to local execution) rather than blocking.
func TestAcquireNoWorkers(t *testing.T) {
	r := testRegistry(newFakeClock())
	if _, err := r.Acquire(context.Background()); !errors.Is(err, ErrNoWorkers) {
		t.Fatalf("Acquire on empty registry: %v, want ErrNoWorkers", err)
	}
	// And after the last worker is removed mid-wait, a blocked Acquire
	// resolves to ErrNoWorkers instead of waiting forever.
	r.Upsert(RegisterRequest{ID: "w-a", Capacity: 1})
	l := mustAcquire(t, r)
	done := make(chan error, 1)
	go func() {
		_, err := r.Acquire(context.Background())
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	_ = l
	r.Remove("w-a")
	select {
	case err := <-done:
		if !errors.Is(err, ErrNoWorkers) {
			t.Fatalf("blocked Acquire after removal: %v, want ErrNoWorkers", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Acquire did not observe the registry emptying")
	}
}

// TestAcquireContextCancel: cancelling ctx unblocks a saturated wait.
func TestAcquireContextCancel(t *testing.T) {
	r := testRegistry(newFakeClock())
	r.Upsert(RegisterRequest{ID: "w-a", Capacity: 1})
	mustAcquire(t, r)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := r.Acquire(ctx)
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("cancelled Acquire: %v, want context.Canceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Acquire did not observe cancellation")
	}
}

// TestExpireDead: workers outliving the liveness window are removed, their
// gone channel closes, and a fresh heartbeat re-admits them.
func TestExpireDead(t *testing.T) {
	clock := newFakeClock()
	r := testRegistry(clock)
	r.Upsert(RegisterRequest{ID: "w-a", Capacity: 1})
	r.Upsert(RegisterRequest{ID: "w-b", Capacity: 1})
	lease := mustAcquire(t, r) // w-a

	clock.advance(2 * time.Second)
	r.Upsert(RegisterRequest{ID: "w-b", Capacity: 1}) // heartbeat
	expired := r.ExpireDead(time.Second)
	if len(expired) != 1 || expired[0] != "w-a" {
		t.Fatalf("expired = %v, want [w-a]", expired)
	}
	select {
	case <-lease.Gone:
	default:
		t.Fatal("expired worker's gone channel not closed")
	}
	lease.Release() // slot died with the worker; must not panic or underflow
	if n := r.Len(); n != 1 {
		t.Fatalf("registry has %d workers after expiry, want 1", n)
	}
	if isNew := r.Upsert(RegisterRequest{ID: "w-a", Capacity: 1}); !isNew {
		t.Fatal("re-registered expired worker should be new again")
	}
}

// TestStaleLeaseReleaseIgnoresNewIncarnation: a lease acquired on an
// expired worker incarnation must not decrement the in-flight count of a
// re-registered incarnation with the same id — that would let dispatchers
// overrun the fresh worker's capacity.
func TestStaleLeaseReleaseIgnoresNewIncarnation(t *testing.T) {
	r := testRegistry(newFakeClock())
	r.Upsert(RegisterRequest{ID: "w-a", Capacity: 1})
	stale := mustAcquire(t, r)
	r.Remove("w-a") // observed dead mid-batch

	// The worker comes back (heartbeat after restart) and its only slot is
	// acquired by a new dispatcher.
	r.Upsert(RegisterRequest{ID: "w-a", Capacity: 1})
	fresh := mustAcquire(t, r)

	// The old batch finally errors out and releases its stale lease; the
	// fresh incarnation must still be saturated.
	stale.Release()
	if snap := r.Snapshot(); snap[0].Inflight != 1 {
		t.Fatalf("stale release drained the new incarnation: inflight = %d, want 1", snap[0].Inflight)
	}
	fresh.Release()
	if snap := r.Snapshot(); snap[0].Inflight != 0 {
		t.Fatalf("matching release did not free the slot: inflight = %d", snap[0].Inflight)
	}
}

// TestSnapshotSorted: the public view is sorted by id with live load.
func TestSnapshotSorted(t *testing.T) {
	clock := newFakeClock()
	r := testRegistry(clock)
	r.Upsert(RegisterRequest{ID: "w-b", URL: "http://b", Capacity: 3})
	r.Upsert(RegisterRequest{ID: "w-a", URL: "http://a", Capacity: 0}) // clamped to 1
	mustAcquire(t, r)                                                  // w-a (least loaded, smallest id)

	snap := r.Snapshot()
	if len(snap) != 2 || snap[0].ID != "w-a" || snap[1].ID != "w-b" {
		t.Fatalf("snapshot order = %+v, want [w-a w-b]", snap)
	}
	if snap[0].Capacity != 1 {
		t.Fatalf("capacity 0 should clamp to 1, got %d", snap[0].Capacity)
	}
	if snap[0].Inflight != 1 || snap[1].Inflight != 0 {
		t.Fatalf("inflight = %d/%d, want 1/0", snap[0].Inflight, snap[1].Inflight)
	}
}
