package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
)

// countingServer is an httptest server that counts accepted TCP
// connections, so tests can assert the client reuses its pooled
// connection instead of churning a fresh one per request.
func countingServer(t *testing.T, h http.Handler) (*httptest.Server, *atomic.Int64) {
	t.Helper()
	var conns atomic.Int64
	srv := httptest.NewUnstartedServer(h)
	srv.Config.ConnState = func(_ net.Conn, state http.ConnState) {
		if state == http.StateNew {
			conns.Add(1)
		}
	}
	srv.Start()
	t.Cleanup(srv.Close)
	return srv, &conns
}

// TestErrorRepliesReuseConnection: a non-200 reply must not cost the
// connection. The old client closed the body with the tail of the error
// reply unread, which tears down the pooled connection — a coordinator
// retrying against an erroring worker then opened a fresh TCP connection
// per attempt.
func TestErrorRepliesReuseConnection(t *testing.T) {
	srv, conns := countingServer(t, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		// An error reply bigger than the client's 512-byte preview, so the
		// unread tail is what the drain has to consume.
		w.WriteHeader(http.StatusInternalServerError)
		fmt.Fprintf(w, "worker exploded: %s", strings.Repeat("boom ", 1024))
	}))
	c := NewTunedClient(ClientOptions{})
	req := sampleExecuteRequest()
	for i := 0; i < 5; i++ {
		_, err := c.Execute(context.Background(), srv.URL, req)
		var se *StatusError
		if !errors.As(err, &se) || se.Code != http.StatusInternalServerError {
			t.Fatalf("attempt %d: err = %v", i, err)
		}
	}
	if n := conns.Load(); n != 1 {
		t.Fatalf("5 error replies used %d connections, want 1 (body not drained?)", n)
	}
}

// TestDecodeErrorReuseConnection: same property on the decode-failure
// path — a 200 whose body the client gives up on mid-decode.
func TestDecodeErrorReuseConnection(t *testing.T) {
	srv, conns := countingServer(t, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintf(w, `{"results": "not an array", "padding": %q}`, strings.Repeat("x", 4096))
	}))
	c := NewTunedClient(ClientOptions{})
	for i := 0; i < 3; i++ {
		if _, err := c.Execute(context.Background(), srv.URL, sampleExecuteRequest()); err == nil {
			t.Fatal("bad response decoded")
		}
	}
	if n := conns.Load(); n != 1 {
		t.Fatalf("3 decode failures used %d connections, want 1", n)
	}
}

// echoWorker is a handler that decodes an execute request in whatever
// codec arrived and answers one result per config, in the request's codec
// (gzipped when the client advertised it and the body is big enough).
func echoWorker(t *testing.T, sawCodec *atomic.Value) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		req, codec, err := DecodeExecuteRequestAuto(r.Body, r.Header.Get("Content-Type"), r.Header.Get("Content-Encoding"))
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		sawCodec.Store(codec)
		resp := ExecuteResponse{Results: make([]json.RawMessage, len(req.Configs))}
		for i, c := range req.Configs {
			resp.Results[i] = mustMarshal(t, map[string]any{"index": c.Index, "spec_bytes": len(c.Spec)})
		}
		if codec == CodecBinary {
			body := EncodeExecuteResponseBinary(resp)
			if strings.Contains(r.Header.Get("Accept-Encoding"), "gzip") {
				if gz, ok := MaybeGzip(body); ok {
					body = gz
					w.Header().Set("Content-Encoding", "gzip")
				}
			}
			w.Header().Set("Content-Type", BinaryContentType)
			w.Write(body)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(resp)
	})
}

// TestExecuteWithBinary: a full binary dispatch round trip over real HTTP,
// including request gzip (the batch is padded past wireCompressMin) and a
// gzipped binary response, with the traffic counters seeing wire bytes.
func TestExecuteWithBinary(t *testing.T) {
	var saw atomic.Value
	srv, _ := countingServer(t, echoWorker(t, &saw))
	c := NewTunedClient(ClientOptions{})
	req := bigExecuteRequest(64)
	resp, traffic, err := c.ExecuteWith(context.Background(), srv.URL, req, CodecBinary)
	if err != nil {
		t.Fatalf("ExecuteWith: %v", err)
	}
	if saw.Load() != CodecBinary {
		t.Fatalf("worker decoded codec %v, want binary", saw.Load())
	}
	if len(resp.Results) != len(req.Configs) {
		t.Fatalf("got %d results", len(resp.Results))
	}
	if traffic.Codec != CodecBinary || traffic.BytesOut == 0 || traffic.BytesIn == 0 {
		t.Fatalf("traffic = %+v", traffic)
	}
	// The request body repeats the same spec 64 times: gzip must have paid.
	if plain := int64(len(EncodeExecuteRequestBinary(req))); traffic.BytesOut >= plain {
		t.Fatalf("request not compressed: %d wire bytes vs %d plain", traffic.BytesOut, plain)
	}
}

// TestExecuteWithJSONFallback: the same worker spoken to in JSON — the
// compatibility path a coordinator takes for workers that never advertised
// the binary codec.
func TestExecuteWithJSONFallback(t *testing.T) {
	var saw atomic.Value
	srv, _ := countingServer(t, echoWorker(t, &saw))
	c := NewTunedClient(ClientOptions{})
	req := bigExecuteRequest(8)
	resp, traffic, err := c.ExecuteWith(context.Background(), srv.URL, req, CodecJSON)
	if err != nil {
		t.Fatalf("ExecuteWith: %v", err)
	}
	if saw.Load() != CodecJSON || traffic.Codec != CodecJSON {
		t.Fatalf("codec: worker=%v traffic=%q", saw.Load(), traffic.Codec)
	}
	if len(resp.Results) != len(req.Configs) {
		t.Fatalf("got %d results", len(resp.Results))
	}
}

// TestExecuteWithBinaryResultCountMismatch: the short-batch guard holds on
// the binary path too.
func TestExecuteWithBinaryResultCountMismatch(t *testing.T) {
	srv, _ := countingServer(t, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", BinaryContentType)
		w.Write(EncodeExecuteResponseBinary(ExecuteResponse{Results: []json.RawMessage{[]byte(`{}`)}}))
	}))
	c := NewTunedClient(ClientOptions{})
	_, _, err := c.ExecuteWith(context.Background(), srv.URL, bigExecuteRequest(4), CodecBinary)
	if err == nil || !strings.Contains(err.Error(), "results for a") {
		t.Fatalf("err = %v", err)
	}
}

func bigExecuteRequest(configs int) ExecuteRequest {
	req := ExecuteRequest{JobID: "job-000042", Batch: 1}
	for i := 0; i < configs; i++ {
		req.Configs = append(req.Configs, ExecuteConfig{Index: i,
			Spec: json.RawMessage(`{"Benchmark":"gcm_n13","Scheduler":"dynamic","Opts":{"runs":3,"seed":42,"distance":11}}`)})
	}
	return req
}

func mustMarshal(t *testing.T, v any) json.RawMessage {
	t.Helper()
	data, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return data
}
