package cluster

import (
	"bytes"
	"compress/flate"
	"compress/gzip"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"strings"
)

// Wire codec names, advertised by workers in RegisterRequest.Codecs and
// selected per-dispatch by the coordinator. JSON is both the debug path
// and the compatibility floor: a worker that advertises nothing predates
// codec negotiation and is spoken to in JSON.
const (
	CodecJSON   = "json"
	CodecBinary = "binary"
)

// SupportedCodecs lists the wire codecs this build can serve, most
// preferred first — what a worker advertises when registering.
func SupportedCodecs() []string { return []string{CodecBinary, CodecJSON} }

// BinaryContentType labels binary-framed execute requests and responses;
// anything else on the wire is treated as JSON.
const BinaryContentType = "application/x-rescq-binary"

// wireVersion is the binary wire format version, carried in the frame
// magic. A frame with an unknown version is rejected whole.
const wireVersion = 1

// wireMagic opens every binary wire frame.
var wireMagic = [4]byte{'R', 'Q', 'X', wireVersion}

// Frame kinds: the byte after the magic.
const (
	wireKindRequest  = 1
	wireKindResponse = 2
)

const (
	// wireCompressMin is the body size at which gzip is worth its CPU on
	// the wire; batch requests and result batches clear it easily.
	wireCompressMin = 1024
	// errorBodyDrain bounds how much of an error reply is read to keep
	// the pooled connection reusable; past it, closing is cheaper.
	errorBodyDrain = 256 << 10
)

var errBadFrame = errors.New("cluster: bad binary frame")

// appendWireBlob appends a uvarint length prefix followed by the bytes.
func appendWireBlob(b, p []byte) []byte {
	b = binary.AppendUvarint(b, uint64(len(p)))
	return append(b, p...)
}

// readWireBlob splits a length-prefixed field off b, capping it at max.
func readWireBlob(b []byte, max int) (val, rest []byte, err error) {
	n, sz := binary.Uvarint(b)
	if sz <= 0 || n > uint64(max) || n > uint64(len(b)-sz) {
		return nil, nil, errBadFrame
	}
	return b[sz : sz+int(n)], b[sz+int(n):], nil
}

// sealWireFrame wraps a body into a frame: magic, kind, body, and a
// CRC32-IEEE (little-endian) over kind+body. The CRC is a transport
// integrity check, not authentication — peers are already trusted enough
// to be dialed, the checksum catches truncation and proxy mangling.
func sealWireFrame(kind byte, body []byte) []byte {
	frame := make([]byte, 0, len(wireMagic)+1+len(body)+4)
	frame = append(frame, wireMagic[:]...)
	frame = append(frame, kind)
	frame = append(frame, body...)
	return binary.LittleEndian.AppendUint32(frame, crc32.ChecksumIEEE(frame[len(wireMagic):]))
}

// openWireFrame validates magic, version, kind and CRC, returning the body.
func openWireFrame(frame []byte, wantKind byte) ([]byte, error) {
	if len(frame) < len(wireMagic)+1+4 {
		return nil, fmt.Errorf("%w: %d bytes", errBadFrame, len(frame))
	}
	if !bytes.Equal(frame[:3], wireMagic[:3]) {
		return nil, fmt.Errorf("%w: bad magic", errBadFrame)
	}
	if frame[3] != wireVersion {
		return nil, fmt.Errorf("cluster: unsupported wire version %d (this build speaks version %d)",
			frame[3], wireVersion)
	}
	payload, sum := frame[len(wireMagic):len(frame)-4], frame[len(frame)-4:]
	if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(sum) {
		return nil, fmt.Errorf("%w: checksum mismatch", errBadFrame)
	}
	if payload[0] != wantKind {
		return nil, fmt.Errorf("%w: kind %d, want %d", errBadFrame, payload[0], wantKind)
	}
	return payload[1:], nil
}

// EncodeExecuteRequestBinary renders a batch-dispatch request as one
// binary frame: job id, batch ordinal, then each config as index + spec.
func EncodeExecuteRequestBinary(req ExecuteRequest) []byte {
	body := appendWireBlob(nil, []byte(req.JobID))
	body = binary.AppendUvarint(body, uint64(req.Batch))
	body = binary.AppendUvarint(body, uint64(len(req.Configs)))
	for _, c := range req.Configs {
		body = binary.AppendUvarint(body, uint64(c.Index))
		body = appendWireBlob(body, c.Spec)
	}
	return sealWireFrame(wireKindRequest, body)
}

// DecodeExecuteRequestBinary strictly parses a binary batch-dispatch
// request under the same size/count/index caps as the JSON decoder — the
// worker-side trust boundary for coordinator traffic (and fuzzed like it).
func DecodeExecuteRequestBinary(r io.Reader) (ExecuteRequest, error) {
	frame, err := io.ReadAll(io.LimitReader(r, MaxExecuteBody+1))
	if err != nil {
		return ExecuteRequest{}, fmt.Errorf("cluster: read execute request: %w", err)
	}
	if len(frame) > MaxExecuteBody {
		return ExecuteRequest{}, fmt.Errorf("cluster: execute request exceeds %d bytes", MaxExecuteBody)
	}
	body, err := openWireFrame(frame, wireKindRequest)
	if err != nil {
		return ExecuteRequest{}, err
	}
	var req ExecuteRequest
	var blob []byte
	if blob, body, err = readWireBlob(body, MaxExecuteBody); err != nil {
		return ExecuteRequest{}, fmt.Errorf("cluster: bad execute request: job id: %w", err)
	}
	req.JobID = string(blob)
	batch, sz := binary.Uvarint(body)
	if sz <= 0 || batch > 1<<31 {
		return ExecuteRequest{}, errors.New("cluster: bad execute request: batch ordinal")
	}
	req.Batch, body = int(batch), body[sz:]
	count, sz := binary.Uvarint(body)
	if sz <= 0 || count > MaxBatchConfigs {
		return ExecuteRequest{}, fmt.Errorf("cluster: bad execute request: %d configs exceeds the %d limit",
			count, MaxBatchConfigs)
	}
	body = body[sz:]
	req.Configs = make([]ExecuteConfig, 0, count)
	for i := 0; i < int(count); i++ {
		idx, sz := binary.Uvarint(body)
		if sz <= 0 || idx > 1<<31 {
			return ExecuteRequest{}, fmt.Errorf("cluster: bad execute request: config %d index", i)
		}
		body = body[sz:]
		if blob, body, err = readWireBlob(body, MaxExecuteBody); err != nil {
			return ExecuteRequest{}, fmt.Errorf("cluster: bad execute request: config %d spec: %w", i, err)
		}
		req.Configs = append(req.Configs, ExecuteConfig{Index: int(idx), Spec: append([]byte(nil), blob...)})
	}
	if len(body) != 0 {
		return ExecuteRequest{}, errors.New("cluster: bad execute request: trailing data")
	}
	if err := req.validate(); err != nil {
		return ExecuteRequest{}, err
	}
	return req, nil
}

// EncodeExecuteResponseBinary renders a batch's results as one binary
// frame: a count, then each opaque result payload.
func EncodeExecuteResponseBinary(resp ExecuteResponse) []byte {
	body := binary.AppendUvarint(nil, uint64(len(resp.Results)))
	for _, r := range resp.Results {
		body = appendWireBlob(body, r)
	}
	return sealWireFrame(wireKindResponse, body)
}

// DecodeExecuteResponseBinary parses a binary execute response. Responses
// are deliberately not size-capped, matching the JSON path: they come from
// peers this node chose to dial, and a large batch of KeepLatencies
// results is legitimately bigger than any request bound.
func DecodeExecuteResponseBinary(frame []byte) (ExecuteResponse, error) {
	body, err := openWireFrame(frame, wireKindResponse)
	if err != nil {
		return ExecuteResponse{}, err
	}
	count, sz := binary.Uvarint(body)
	if sz <= 0 || count > MaxBatchConfigs {
		return ExecuteResponse{}, fmt.Errorf("cluster: bad execute response: %d results", count)
	}
	body = body[sz:]
	resp := ExecuteResponse{Results: make([]json.RawMessage, 0, count)}
	for i := 0; i < int(count); i++ {
		var blob []byte
		if blob, body, err = readWireBlob(body, len(frame)); err != nil {
			return ExecuteResponse{}, fmt.Errorf("cluster: bad execute response: result %d: %w", i, err)
		}
		resp.Results = append(resp.Results, append([]byte(nil), blob...))
	}
	if len(body) != 0 {
		return ExecuteResponse{}, errors.New("cluster: bad execute response: trailing data")
	}
	return resp, nil
}

// DecodeExecuteRequestAuto decodes a worker-side execute request in
// whichever codec and stream compression the coordinator sent, reporting
// the codec used. Content-Encoding is unwrapped first (the decompressed
// stream still flows through the strictly-capped decoders), then the
// Content-Type selects the codec; anything but BinaryContentType is
// treated as the JSON compatibility path.
func DecodeExecuteRequestAuto(body io.Reader, contentType, contentEncoding string) (ExecuteRequest, string, error) {
	switch strings.ToLower(strings.TrimSpace(contentEncoding)) {
	case "", "identity":
	case "gzip":
		zr, err := gzip.NewReader(body)
		if err != nil {
			return ExecuteRequest{}, "", fmt.Errorf("cluster: bad execute request: gzip: %w", err)
		}
		defer zr.Close()
		body = zr
	case "deflate":
		zr := flate.NewReader(body)
		defer zr.Close()
		body = zr
	default:
		return ExecuteRequest{}, "", fmt.Errorf("cluster: unsupported content encoding %q", contentEncoding)
	}
	if ct, _, _ := strings.Cut(contentType, ";"); strings.TrimSpace(ct) == BinaryContentType {
		req, err := DecodeExecuteRequestBinary(body)
		return req, CodecBinary, err
	}
	req, err := DecodeExecuteRequest(body)
	return req, CodecJSON, err
}

// MaybeGzip compresses a wire body when it is big enough to matter and
// compression actually pays, reporting whether it did.
func MaybeGzip(body []byte) ([]byte, bool) {
	if len(body) < wireCompressMin {
		return body, false
	}
	var buf bytes.Buffer
	zw, err := gzip.NewWriterLevel(&buf, gzip.BestSpeed)
	if err != nil {
		return body, false
	}
	if _, err := zw.Write(body); err != nil {
		return body, false
	}
	if err := zw.Close(); err != nil {
		return body, false
	}
	if buf.Len() >= len(body) {
		return body, false
	}
	return buf.Bytes(), true
}

// drainBody reads (a bounded amount of) the remaining response body so
// the pooled HTTP connection can be reused instead of torn down. Called
// before Close on every non-success and decode-failure path.
func drainBody(r io.Reader) {
	io.Copy(io.Discard, io.LimitReader(r, errorBodyDrain))
}
