package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"testing"
)

// benchBatch builds a dispatch-sized batch with realistic sweep specs and
// the matching worker response full of result summaries — the payloads the
// coordinator<->worker wire actually carries.
func benchBatch(b *testing.B, configs int) (ExecuteRequest, ExecuteResponse) {
	req := ExecuteRequest{JobID: "job-000042", Batch: 1}
	resp := ExecuteResponse{}
	for i := 0; i < configs; i++ {
		req.Configs = append(req.Configs, ExecuteConfig{Index: i, Spec: json.RawMessage(fmt.Sprintf(
			`{"Benchmark":"gcm_n13","Scheduler":"dynamic","Opts":{"runs":3,"seed":%d,"distance":11,"keep_latencies":false}}`, i))})
		resp.Results = append(resp.Results, json.RawMessage(fmt.Sprintf(
			`{"benchmark":"gcm_n13","scheduler":"dynamic","runs":3,"mean_cycles":%d,"min_cycles":%d,"max_cycles":%d,"std_cycles":104.2,"mean_idle":0.131}`,
			812000+i, 811000+i, 813000+i)))
	}
	return req, resp
}

// benchWireRoundTrip measures one batch dispatch's serialization work both
// ways: encode request, decode request (worker), encode response, decode
// response (coordinator). bytes/batch is the wire cost before compression.
func benchWireRoundTrip(b *testing.B, codec string) {
	req, resp := benchBatch(b, 64)
	encReq := func() []byte {
		if codec == CodecBinary {
			return EncodeExecuteRequestBinary(req)
		}
		data, err := json.Marshal(req)
		if err != nil {
			b.Fatal(err)
		}
		return data
	}
	encResp := func() []byte {
		if codec == CodecBinary {
			return EncodeExecuteResponseBinary(resp)
		}
		data, err := json.Marshal(resp)
		if err != nil {
			b.Fatal(err)
		}
		return data
	}
	b.ReportMetric(float64(len(encReq())+len(encResp())), "bytes/batch")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		reqWire, respWire := encReq(), encResp()
		var (
			gotReq  ExecuteRequest
			gotResp ExecuteResponse
			err     error
		)
		if codec == CodecBinary {
			if gotReq, err = DecodeExecuteRequestBinary(bytes.NewReader(reqWire)); err != nil {
				b.Fatal(err)
			}
			if gotResp, err = DecodeExecuteResponseBinary(respWire); err != nil {
				b.Fatal(err)
			}
		} else {
			if gotReq, err = DecodeExecuteRequest(bytes.NewReader(reqWire)); err != nil {
				b.Fatal(err)
			}
			if err = json.Unmarshal(respWire, &gotResp); err != nil {
				b.Fatal(err)
			}
		}
		if len(gotReq.Configs) != len(req.Configs) || len(gotResp.Results) != len(resp.Results) {
			b.Fatal("round trip lost configs or results")
		}
	}
}

func BenchmarkWireBatchRoundTripBinary(b *testing.B) { benchWireRoundTrip(b, CodecBinary) }
func BenchmarkWireBatchRoundTripJSON(b *testing.B)   { benchWireRoundTrip(b, CodecJSON) }
