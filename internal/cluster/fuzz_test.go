package cluster

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// FuzzDecodeExecuteRequest hammers the worker-side trust boundary: the
// batch-dispatch decoder must never panic, must never accept a request
// that violates its own invariants, and accepted requests must re-encode
// and re-decode to the same batch (the coordinator and worker speak the
// same dialect).
func FuzzDecodeExecuteRequest(f *testing.F) {
	f.Add([]byte(validExecuteJSON()))
	f.Add([]byte(`{"job_id":"j","batch":1,"configs":[{"index":0,"spec":{"Benchmark":"x","Opts":{"distance":5}}}]}`))
	f.Add([]byte(`{"job_id":"","configs":[]}`))
	f.Add([]byte(`{"configs":[{"index":-1,"spec":{}}]}`))
	f.Add([]byte(`[1,2,3]`))
	f.Add([]byte(`{"job_id":"j","configs":[{"index":0,"spec":0}]}`))
	f.Add([]byte("\x00\xff garbage"))

	f.Fuzz(func(t *testing.T, data []byte) {
		req, err := DecodeExecuteRequest(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Accepted requests must satisfy the documented invariants.
		if req.JobID == "" || req.Batch < 0 {
			t.Fatalf("accepted request with bad header: %+v", req)
		}
		if len(req.Configs) == 0 || len(req.Configs) > MaxBatchConfigs {
			t.Fatalf("accepted batch of %d configs", len(req.Configs))
		}
		for i, c := range req.Configs {
			if c.Index < 0 || len(c.Spec) == 0 {
				t.Fatalf("accepted bad config %d: %+v", i, c)
			}
			if i > 0 && c.Index <= req.Configs[i-1].Index {
				t.Fatalf("accepted non-increasing indices at %d", i)
			}
		}
		// Round trip: encode and strictly re-decode.
		enc, err := json.Marshal(req)
		if err != nil {
			t.Fatalf("re-encode accepted request: %v", err)
		}
		again, err := DecodeExecuteRequest(strings.NewReader(string(enc)))
		if err != nil {
			t.Fatalf("re-decode encoded request: %v\n%s", err, enc)
		}
		if again.JobID != req.JobID || len(again.Configs) != len(req.Configs) {
			t.Fatalf("round trip changed the batch: %+v vs %+v", again, req)
		}
	})
}

// FuzzDecodeExecuteRequestBinary is the same trust-boundary contract for
// the binary wire: no panics, no cap violations in accepted requests, and
// every accepted request survives a binary re-encode/re-decode.
func FuzzDecodeExecuteRequestBinary(f *testing.F) {
	valid := EncodeExecuteRequestBinary(ExecuteRequest{JobID: "job-000001", Batch: 2,
		Configs: []ExecuteConfig{
			{Index: 0, Spec: []byte(`{"Benchmark":"gcm_n13"}`)},
			{Index: 3, Spec: []byte(`{"Benchmark":"qft_n18","Opts":{"distance":5}}`)},
		}})
	f.Add(valid)
	f.Add(valid[:len(valid)-3])
	f.Add(valid[:5])
	crcFlip := append([]byte(nil), valid...)
	crcFlip[len(crcFlip)-2] ^= 0xff
	f.Add(crcFlip)
	future := append([]byte(nil), valid...)
	future[3] = wireVersion + 1
	f.Add(future)
	f.Add(EncodeExecuteResponseBinary(ExecuteResponse{Results: []json.RawMessage{[]byte(`{}`)}}))
	f.Add([]byte("RQX"))
	f.Add([]byte("\x00\xff garbage"))

	f.Fuzz(func(t *testing.T, data []byte) {
		req, err := DecodeExecuteRequestBinary(bytes.NewReader(data))
		if err != nil {
			return
		}
		if req.JobID == "" || req.Batch < 0 {
			t.Fatalf("accepted request with bad header: %+v", req)
		}
		if len(req.Configs) == 0 || len(req.Configs) > MaxBatchConfigs {
			t.Fatalf("accepted batch of %d configs", len(req.Configs))
		}
		for i, c := range req.Configs {
			if c.Index < 0 || len(c.Spec) == 0 {
				t.Fatalf("accepted bad config %d: %+v", i, c)
			}
			if i > 0 && c.Index <= req.Configs[i-1].Index {
				t.Fatalf("accepted non-increasing indices at %d", i)
			}
		}
		again, err := DecodeExecuteRequestBinary(bytes.NewReader(EncodeExecuteRequestBinary(req)))
		if err != nil {
			t.Fatalf("re-decode encoded request: %v", err)
		}
		if again.JobID != req.JobID || len(again.Configs) != len(req.Configs) {
			t.Fatalf("round trip changed the batch: %+v vs %+v", again, req)
		}
	})
}
