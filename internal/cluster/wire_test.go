package cluster

import (
	"encoding/json"
	"strings"
	"testing"
)

func validExecuteJSON() string {
	return `{"job_id":"job-000001","batch":0,"configs":[` +
		`{"index":0,"spec":{"Benchmark":"gcm_n13"}},` +
		`{"index":2,"spec":{"Benchmark":"qft_n18"}}]}`
}

func TestDecodeExecuteRequestValid(t *testing.T) {
	req, err := DecodeExecuteRequest(strings.NewReader(validExecuteJSON()))
	if err != nil {
		t.Fatalf("decode valid request: %v", err)
	}
	if req.JobID != "job-000001" || len(req.Configs) != 2 || req.Configs[1].Index != 2 {
		t.Fatalf("decoded request = %+v", req)
	}
}

func TestDecodeExecuteRequestRejects(t *testing.T) {
	huge := `{"job_id":"j","batch":0,"configs":[` +
		strings.Repeat(`{"index":0,"spec":{}},`, MaxBatchConfigs) +
		`{"index":1,"spec":{}}]}`
	cases := []struct {
		name string
		body string
	}{
		{"empty body", ""},
		{"not json", "batch batch batch"},
		{"trailing data", validExecuteJSON() + `{"job_id":"x"}`},
		{"unknown field", `{"job_id":"j","surprise":1,"configs":[{"index":0,"spec":{}}]}`},
		{"missing job id", `{"batch":0,"configs":[{"index":0,"spec":{}}]}`},
		{"negative batch", `{"job_id":"j","batch":-1,"configs":[{"index":0,"spec":{}}]}`},
		{"empty batch", `{"job_id":"j","batch":0,"configs":[]}`},
		{"negative index", `{"job_id":"j","configs":[{"index":-1,"spec":{}}]}`},
		{"non-increasing indices", `{"job_id":"j","configs":[{"index":1,"spec":{}},{"index":1,"spec":{}}]}`},
		{"empty spec", `{"job_id":"j","configs":[{"index":0}]}`},
		{"oversized batch", huge},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := DecodeExecuteRequest(strings.NewReader(tc.body)); err == nil {
				t.Fatalf("decode accepted %s", tc.name)
			}
		})
	}
}

// TestExecuteRequestRoundTrip: an encoded request decodes back to itself,
// so the coordinator's marshal and the worker's strict decoder agree.
func TestExecuteRequestRoundTrip(t *testing.T) {
	in := ExecuteRequest{
		JobID: "job-000042",
		Batch: 3,
		Configs: []ExecuteConfig{
			{Index: 4, Spec: json.RawMessage(`{"Benchmark":"gcm_n13","Opts":{"runs":1}}`)},
			{Index: 7, Spec: json.RawMessage(`{"Experiment":"fig10","Quick":true}`)},
		},
	}
	data, err := json.Marshal(in)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	out, err := DecodeExecuteRequest(strings.NewReader(string(data)))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if out.JobID != in.JobID || out.Batch != in.Batch || len(out.Configs) != 2 {
		t.Fatalf("round trip mismatch: %+v", out)
	}
	for i := range in.Configs {
		if out.Configs[i].Index != in.Configs[i].Index ||
			string(out.Configs[i].Spec) != string(in.Configs[i].Spec) {
			t.Fatalf("config %d mismatch: %+v vs %+v", i, out.Configs[i], in.Configs[i])
		}
	}
}
