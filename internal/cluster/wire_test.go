package cluster

import (
	"bytes"
	"compress/gzip"
	"encoding/json"
	"io"
	"strings"
	"testing"
)

func validExecuteJSON() string {
	return `{"job_id":"job-000001","batch":0,"configs":[` +
		`{"index":0,"spec":{"Benchmark":"gcm_n13"}},` +
		`{"index":2,"spec":{"Benchmark":"qft_n18"}}]}`
}

func TestDecodeExecuteRequestValid(t *testing.T) {
	req, err := DecodeExecuteRequest(strings.NewReader(validExecuteJSON()))
	if err != nil {
		t.Fatalf("decode valid request: %v", err)
	}
	if req.JobID != "job-000001" || len(req.Configs) != 2 || req.Configs[1].Index != 2 {
		t.Fatalf("decoded request = %+v", req)
	}
}

func TestDecodeExecuteRequestRejects(t *testing.T) {
	huge := `{"job_id":"j","batch":0,"configs":[` +
		strings.Repeat(`{"index":0,"spec":{}},`, MaxBatchConfigs) +
		`{"index":1,"spec":{}}]}`
	cases := []struct {
		name string
		body string
	}{
		{"empty body", ""},
		{"not json", "batch batch batch"},
		{"trailing data", validExecuteJSON() + `{"job_id":"x"}`},
		{"unknown field", `{"job_id":"j","surprise":1,"configs":[{"index":0,"spec":{}}]}`},
		{"missing job id", `{"batch":0,"configs":[{"index":0,"spec":{}}]}`},
		{"negative batch", `{"job_id":"j","batch":-1,"configs":[{"index":0,"spec":{}}]}`},
		{"empty batch", `{"job_id":"j","batch":0,"configs":[]}`},
		{"negative index", `{"job_id":"j","configs":[{"index":-1,"spec":{}}]}`},
		{"non-increasing indices", `{"job_id":"j","configs":[{"index":1,"spec":{}},{"index":1,"spec":{}}]}`},
		{"empty spec", `{"job_id":"j","configs":[{"index":0}]}`},
		{"oversized batch", huge},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := DecodeExecuteRequest(strings.NewReader(tc.body)); err == nil {
				t.Fatalf("decode accepted %s", tc.name)
			}
		})
	}
}

// TestExecuteRequestRoundTrip: an encoded request decodes back to itself,
// so the coordinator's marshal and the worker's strict decoder agree.
func TestExecuteRequestRoundTrip(t *testing.T) {
	in := ExecuteRequest{
		JobID: "job-000042",
		Batch: 3,
		Configs: []ExecuteConfig{
			{Index: 4, Spec: json.RawMessage(`{"Benchmark":"gcm_n13","Opts":{"runs":1}}`)},
			{Index: 7, Spec: json.RawMessage(`{"Experiment":"fig10","Quick":true}`)},
		},
	}
	data, err := json.Marshal(in)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	out, err := DecodeExecuteRequest(strings.NewReader(string(data)))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if out.JobID != in.JobID || out.Batch != in.Batch || len(out.Configs) != 2 {
		t.Fatalf("round trip mismatch: %+v", out)
	}
	for i := range in.Configs {
		if out.Configs[i].Index != in.Configs[i].Index ||
			string(out.Configs[i].Spec) != string(in.Configs[i].Spec) {
			t.Fatalf("config %d mismatch: %+v vs %+v", i, out.Configs[i], in.Configs[i])
		}
	}
}

func sampleExecuteRequest() ExecuteRequest {
	return ExecuteRequest{
		JobID: "job-000042",
		Batch: 3,
		Configs: []ExecuteConfig{
			{Index: 4, Spec: json.RawMessage(`{"Benchmark":"gcm_n13","Opts":{"runs":1}}`)},
			{Index: 7, Spec: json.RawMessage(`{"Experiment":"fig10","Quick":true}`)},
		},
	}
}

// TestBinaryExecuteRequestRoundTrip: the binary framing carries exactly
// what the JSON wire carries, byte-for-byte on every spec.
func TestBinaryExecuteRequestRoundTrip(t *testing.T) {
	in := sampleExecuteRequest()
	frame := EncodeExecuteRequestBinary(in)
	out, err := DecodeExecuteRequestBinary(bytes.NewReader(frame))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if out.JobID != in.JobID || out.Batch != in.Batch || len(out.Configs) != len(in.Configs) {
		t.Fatalf("round trip mismatch: %+v", out)
	}
	for i := range in.Configs {
		if out.Configs[i].Index != in.Configs[i].Index ||
			string(out.Configs[i].Spec) != string(in.Configs[i].Spec) {
			t.Fatalf("config %d mismatch: %+v vs %+v", i, out.Configs[i], in.Configs[i])
		}
	}
}

func TestBinaryExecuteResponseRoundTrip(t *testing.T) {
	in := ExecuteResponse{Results: []json.RawMessage{
		json.RawMessage(`{"total_cycles":812345}`),
		json.RawMessage(`{"total_cycles":812399,"mean_idle_fraction":0.131}`),
	}}
	out, err := DecodeExecuteResponseBinary(EncodeExecuteResponseBinary(in))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if len(out.Results) != 2 || string(out.Results[0]) != string(in.Results[0]) ||
		string(out.Results[1]) != string(in.Results[1]) {
		t.Fatalf("round trip mismatch: %+v", out)
	}
	empty, err := DecodeExecuteResponseBinary(EncodeExecuteResponseBinary(ExecuteResponse{}))
	if err != nil || len(empty.Results) != 0 {
		t.Fatalf("empty response round trip: %+v err=%v", empty, err)
	}
}

// TestBinaryExecuteRequestRejects: the binary decoder is the same trust
// boundary as the JSON one — every malformed or cap-violating frame must
// be refused, never mis-parsed.
func TestBinaryExecuteRequestRejects(t *testing.T) {
	valid := EncodeExecuteRequestBinary(sampleExecuteRequest())
	flipCRC := append([]byte(nil), valid...)
	flipCRC[len(flipCRC)-1] ^= 0x01
	flipBody := append([]byte(nil), valid...)
	flipBody[len(flipBody)/2] ^= 0x40
	wrongVersion := append([]byte(nil), valid...)
	wrongVersion[3] = wireVersion + 1
	wrongKind := EncodeExecuteResponseBinary(ExecuteResponse{Results: []json.RawMessage{[]byte(`{}`)}})
	trailing := append(append([]byte(nil), valid...), 0xde, 0xad)
	empty := EncodeExecuteRequestBinary(ExecuteRequest{JobID: "j"})
	emptySpec := EncodeExecuteRequestBinary(ExecuteRequest{JobID: "j",
		Configs: []ExecuteConfig{{Index: 0}}})
	decreasing := EncodeExecuteRequestBinary(ExecuteRequest{JobID: "j",
		Configs: []ExecuteConfig{{Index: 2, Spec: []byte(`{}`)}, {Index: 1, Spec: []byte(`{}`)}}})
	cases := []struct {
		name  string
		frame []byte
	}{
		{"empty frame", nil},
		{"garbage", []byte("batch batch batch")},
		{"truncated", valid[:len(valid)-5]},
		{"crc flip", flipCRC},
		{"body flip", flipBody},
		{"wrong version", wrongVersion},
		{"wrong kind", wrongKind},
		{"trailing data", trailing},
		{"no configs", empty},
		{"empty spec", emptySpec},
		{"non-increasing indices", decreasing},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := DecodeExecuteRequestBinary(bytes.NewReader(tc.frame)); err == nil {
				t.Fatalf("decode accepted %s", tc.name)
			}
		})
	}
}

// TestDecodeExecuteRequestAuto: the worker-side dispatcher picks codec by
// Content-Type and unwraps Content-Encoding first.
func TestDecodeExecuteRequestAuto(t *testing.T) {
	in := sampleExecuteRequest()
	jsonBody, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	binBody := EncodeExecuteRequestBinary(in)
	gzBody := gzipBytes(t, binBody)
	cases := []struct {
		name, ct, ce string
		body         []byte
		wantCodec    string
	}{
		{"json", "application/json", "", jsonBody, CodecJSON},
		{"json default ct", "", "", jsonBody, CodecJSON},
		{"binary", BinaryContentType, "", binBody, CodecBinary},
		{"binary with charset", BinaryContentType + "; charset=utf-8", "", binBody, CodecBinary},
		{"binary gzip", BinaryContentType, "gzip", gzBody, CodecBinary},
		{"json gzip", "application/json", "gzip", gzipBytes(t, jsonBody), CodecJSON},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			req, codec, err := DecodeExecuteRequestAuto(bytes.NewReader(tc.body), tc.ct, tc.ce)
			if err != nil {
				t.Fatalf("decode: %v", err)
			}
			if codec != tc.wantCodec || req.JobID != in.JobID || len(req.Configs) != len(in.Configs) {
				t.Fatalf("codec=%q req=%+v", codec, req)
			}
		})
	}
	if _, _, err := DecodeExecuteRequestAuto(bytes.NewReader(binBody), BinaryContentType, "br"); err == nil {
		t.Fatal("unsupported content encoding accepted")
	}
	if _, _, err := DecodeExecuteRequestAuto(bytes.NewReader(binBody), BinaryContentType, "gzip"); err == nil {
		t.Fatal("non-gzip body with gzip encoding accepted")
	}
}

func TestMaybeGzip(t *testing.T) {
	small := []byte("tiny")
	if out, ok := MaybeGzip(small); ok || !bytes.Equal(out, small) {
		t.Fatal("small body compressed")
	}
	big := bytes.Repeat([]byte(`{"total_cycles":812345,"mean_idle_fraction":0.131}`), 100)
	out, ok := MaybeGzip(big)
	if !ok || len(out) >= len(big) {
		t.Fatalf("compressible body not compressed: %d -> %d", len(big), len(out))
	}
	zr, err := gzip.NewReader(bytes.NewReader(out))
	if err != nil {
		t.Fatal(err)
	}
	round, err := io.ReadAll(zr)
	if err != nil || !bytes.Equal(round, big) {
		t.Fatalf("gzip round trip: %v", err)
	}
}

func gzipBytes(t *testing.T, p []byte) []byte {
	t.Helper()
	var buf bytes.Buffer
	zw := gzip.NewWriter(&buf)
	if _, err := zw.Write(p); err != nil {
		t.Fatal(err)
	}
	if err := zw.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}
