// Package cluster implements the horizontal scale-out substrate of the
// rescqd daemon: worker membership, liveness and load tracking for a
// coordinator node, plus the wire protocol and HTTP client the
// coordinator uses to shard sweep configurations across worker nodes.
//
// # Topology
//
// A cluster is one coordinator and N workers, all running the same rescqd
// binary in different modes. The coordinator keeps the public v1 API, the
// WAL, admission control and the result cache; workers execute batches of
// run configurations on the coordinator's behalf.
//
//	                POST /internal/v1/register   (worker -> coordinator,
//	                                              repeated as heartbeat)
//	+--------+     <------------------------     +----------+
//	| coord  |                                   | worker 1 |
//	|  (v1   |     ------------------------>     | worker 2 |
//	|  API)  |      POST /internal/v1/execute    | worker 3 |
//	+--------+       (coordinator -> worker)     +----------+
//
// Workers announce themselves (and stay alive) by POSTing a RegisterRequest
// to the coordinator at every heartbeat interval; a worker that misses the
// liveness window is expired and its in-flight batches are re-dispatched to
// survivors. The coordinator POSTs ExecuteRequests — batches of opaque,
// fully-validated run specifications — to the worker's execute endpoint and
// collects per-configuration results.
//
// The package is deliberately ignorant of the service layer's spec and
// result schemas: specs and results travel as json.RawMessage, so
// internal/service owns the payload shapes and this package owns
// membership, liveness, load accounting and transport.
package cluster

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"time"
)

// Internal endpoint paths, mounted by the rescqd handler in the matching
// mode.
const (
	// RegisterPath is served by the coordinator; workers POST
	// RegisterRequests to it at every heartbeat interval.
	RegisterPath = "/internal/v1/register"
	// ExecutePath is served by workers; the coordinator POSTs
	// ExecuteRequests (batches of run specifications) to it.
	ExecutePath = "/internal/v1/execute"
	// DrainPath is served by workers; an autoscaler (or operator) POSTs to
	// it to retire the worker gracefully. A draining worker rejects new
	// batches, finishes its in-flight ones, announces the drain on its
	// heartbeats, and deregisters once idle.
	DrainPath = "/internal/v1/drain"
)

// RegisterRequest announces (or refreshes) a worker to the coordinator.
// The first request registers the worker; every subsequent one is a
// heartbeat that extends its liveness lease. Capacity may change between
// heartbeats (a worker that resizes its pool re-announces it).
type RegisterRequest struct {
	// ID uniquely names the worker; by convention its advertise URL.
	ID string `json:"id"`
	// URL is the base URL the coordinator dials for ExecutePath.
	URL string `json:"url"`
	// Capacity is the worker's batch parallelism: the coordinator keeps at
	// most this many batches in flight on the worker (min 1).
	Capacity int `json:"capacity"`
	// Codecs lists the wire codecs the worker can decode, most preferred
	// first (see SupportedCodecs). Absent on workers that predate codec
	// negotiation; the coordinator speaks JSON to those.
	Codecs []string `json:"codecs,omitempty"`
	// Draining announces that the worker is retiring: the coordinator must
	// fence it from new batches and release it (deregister, ack with
	// Released) once its in-flight count reaches zero. omitempty keeps
	// non-draining heartbeats decodable by pre-drain coordinators.
	Draining bool `json:"draining,omitempty"`
}

// RegisterResponse acknowledges a registration/heartbeat.
type RegisterResponse struct {
	// ExpiresInMS is the liveness lease: the worker is expired unless it
	// heartbeats again within this window.
	ExpiresInMS int64 `json:"expires_in_ms"`
	// Workers reports the cluster's current live-worker count.
	Workers int `json:"workers"`
	// Released tells a draining worker that the coordinator has dropped it
	// from the registry (its last in-flight batch finished): heartbeating
	// may stop and the process can exit.
	Released bool `json:"released,omitempty"`
}

// DrainResponse acknowledges a drain request on a worker.
type DrainResponse struct {
	// Draining is always true once the request is accepted (drains are
	// sticky and idempotent).
	Draining bool `json:"draining"`
	// Inflight is the number of batches still executing on the worker at
	// the time of the request.
	Inflight int `json:"inflight"`
}

// ExecuteConfig is one run configuration inside a batch: the
// coordinator-assigned global index of the configuration within its job,
// and the opaque service-layer spec.
type ExecuteConfig struct {
	Index int             `json:"index"`
	Spec  json.RawMessage `json:"spec"`
}

// ExecuteRequest is one dispatched batch.
type ExecuteRequest struct {
	// JobID names the coordinator job the batch belongs to (observability
	// only; workers do not track jobs).
	JobID string `json:"job_id"`
	// Batch is the batch's ordinal within the job (observability only).
	Batch int `json:"batch"`
	// Configs are the configurations to execute, in index order.
	Configs []ExecuteConfig `json:"configs"`
}

// ExecuteResponse carries one result per requested configuration, in the
// same order as the request's Configs. Each result is an opaque
// service-layer ConfigResult payload.
type ExecuteResponse struct {
	Results []json.RawMessage `json:"results"`
}

// Decoder limits: a hostile or corrupt dispatch request must not buffer
// unbounded JSON into a worker.
const (
	// MaxExecuteBody caps the encoded request size (circuit-text specs are
	// the largest legitimate payloads, well under a megabyte each).
	MaxExecuteBody = 16 << 20
	// MaxBatchConfigs caps configurations per batch; the coordinator's
	// batch size is always far below it.
	MaxBatchConfigs = 1024
)

// DecodeExecuteRequest strictly parses a batch-dispatch request: size
// capped, unknown fields rejected, batch shape validated. It is the
// worker-side trust boundary for coordinator traffic (and is fuzzed).
func DecodeExecuteRequest(r io.Reader) (ExecuteRequest, error) {
	var req ExecuteRequest
	dec := json.NewDecoder(io.LimitReader(r, MaxExecuteBody+1))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		return ExecuteRequest{}, fmt.Errorf("cluster: bad execute request: %w", err)
	}
	// A second JSON value after the request object is as malformed as a
	// trailing garbage byte.
	if err := dec.Decode(&struct{}{}); err != io.EOF {
		return ExecuteRequest{}, errors.New("cluster: bad execute request: trailing data")
	}
	if err := req.validate(); err != nil {
		return ExecuteRequest{}, err
	}
	return req, nil
}

func (req *ExecuteRequest) validate() error {
	if req.JobID == "" {
		return errors.New("cluster: execute request without job_id")
	}
	if req.Batch < 0 {
		return fmt.Errorf("cluster: negative batch ordinal %d", req.Batch)
	}
	if len(req.Configs) == 0 {
		return errors.New("cluster: execute request with empty batch")
	}
	if len(req.Configs) > MaxBatchConfigs {
		return fmt.Errorf("cluster: batch of %d configs exceeds the %d limit",
			len(req.Configs), MaxBatchConfigs)
	}
	for i, c := range req.Configs {
		if c.Index < 0 {
			return fmt.Errorf("cluster: config %d has negative index %d", i, c.Index)
		}
		if i > 0 && c.Index <= req.Configs[i-1].Index {
			return fmt.Errorf("cluster: config indices not strictly increasing at %d", i)
		}
		if len(c.Spec) == 0 {
			return fmt.Errorf("cluster: config %d has an empty spec", i)
		}
	}
	return nil
}

// WorkerInfo is a point-in-time public view of one registered worker, for
// /healthz and /metrics.
type WorkerInfo struct {
	ID       string  `json:"id"`
	URL      string  `json:"url"`
	Capacity int     `json:"capacity"`
	Inflight int     `json:"inflight"`
	AgeSec   float64 `json:"last_seen_age_sec"`
	// Failures is the worker's consecutive dispatch-failure count; Breaker
	// is its circuit state: "closed", "open" or "half-open".
	Failures int    `json:"failures,omitempty"`
	Breaker  string `json:"breaker"`
	// Codecs is what the worker advertised at registration; empty means a
	// pre-negotiation worker that is spoken to in JSON.
	Codecs []string `json:"codecs,omitempty"`
	// Draining reports that the worker announced a drain and is fenced
	// from new batches while its in-flight ones finish.
	Draining bool `json:"draining,omitempty"`
}

// nowFunc is the registry clock, swappable in tests.
type nowFunc func() time.Time
