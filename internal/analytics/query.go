package analytics

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// validAxes checks every axis name in names against the known axis set.
func validAxes(names []string) error {
	for _, n := range names {
		var a Axes
		if _, ok := a.value(n); !ok {
			return fmt.Errorf("analytics: unknown axis %q (known: %s)", n, strings.Join(axisNames, ", "))
		}
	}
	return nil
}

func validFilter(filter map[string]string) error {
	names := make([]string, 0, len(filter))
	for n := range filter {
		names = append(names, n)
	}
	return validAxes(names)
}

func (c *cell) matches(filter map[string]string) bool {
	for axis, want := range filter {
		got, _ := c.axes.value(axis)
		if got != want {
			return false
		}
	}
	return true
}

// AreaStats summarizes the lattice footprints of a group's member
// configurations (per configuration, not per result — area is a property
// of the configuration). Configs counts members with a known footprint;
// members without one (unknown benchmarks) are excluded.
type AreaStats struct {
	Configs   int     `json:"configs"`
	MinTiles  int64   `json:"min_tiles"`
	MaxTiles  int64   `json:"max_tiles"`
	MeanTiles float64 `json:"mean_tiles"`
	MinPhys   int64   `json:"min_phys_qubits"`
	MaxPhys   int64   `json:"max_phys_qubits"`
	MeanPhys  float64 `json:"mean_phys_qubits"`
}

// GroupStats is one group of a group-by aggregation. Latency statistics
// are over per-run makespans in cycles; the quantiles are weighted
// nearest-rank over member-configuration means (weight = result count),
// computed at query time from the cells' integer accumulators.
type GroupStats struct {
	Key        map[string]string `json:"key"`
	Configs    int               `json:"configs"`
	Results    int64             `json:"results"`
	Runs       int64             `json:"runs"`
	MinCycles  int64             `json:"min_cycles"`
	MaxCycles  int64             `json:"max_cycles"`
	MeanCycles float64           `json:"mean_cycles"`
	P50Cycles  float64           `json:"p50_cycles"`
	P99Cycles  float64           `json:"p99_cycles"`
	Area       *AreaStats        `json:"area,omitempty"`
}

// GroupByResponse is the group-by endpoint payload. Groups are sorted by
// their composite key values, so equal aggregate state always renders
// byte-identical JSON.
type GroupByResponse struct {
	By      []string          `json:"by"`
	Filter  map[string]string `json:"filter,omitempty"`
	Configs int               `json:"configs"`
	Results int64             `json:"results"`
	Groups  []GroupStats      `json:"groups"`
}

type groupAcc struct {
	vals    []string
	members []*cell
	results int64
	runs    int64
	cycles  int64
	minCyc  int64
	maxCyc  int64
}

// quantile returns the weighted nearest-rank q-quantile (q in percent) of
// the member cells' mean latencies, weighting each configuration by its
// result count. Members must already be sorted by (mean, key).
func quantile(members []*cell, total int64, q int64) float64 {
	if total == 0 {
		return 0
	}
	rank := (total*q + 99) / 100 // ceil(total * q/100)
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for _, c := range members {
		cum += c.results
		if cum >= rank {
			return c.mean()
		}
	}
	return members[len(members)-1].mean()
}

// GroupBy aggregates every cell matching filter into one group per
// distinct tuple of the `by` axes. Cost is O(cells), never O(results).
func (s *Store) GroupBy(by []string, filter map[string]string) (*GroupByResponse, error) {
	if len(by) == 0 {
		return nil, fmt.Errorf("analytics: group-by needs at least one axis")
	}
	if err := validAxes(by); err != nil {
		return nil, err
	}
	if err := validFilter(filter); err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.queries++

	groups := make(map[string]*groupAcc)
	resp := &GroupByResponse{By: by, Filter: filter, Groups: []GroupStats{}}
	for _, c := range s.cells {
		if !c.matches(filter) {
			continue
		}
		vals := make([]string, len(by))
		for i, axis := range by {
			vals[i], _ = c.axes.value(axis)
		}
		gk := strings.Join(vals, "\x1f")
		g := groups[gk]
		if g == nil {
			g = &groupAcc{vals: vals, minCyc: math.MaxInt64}
			groups[gk] = g
		}
		g.members = append(g.members, c)
		g.results += c.results
		g.runs += c.runs
		g.cycles += c.cycles
		if c.minCyc < g.minCyc {
			g.minCyc = c.minCyc
		}
		if c.maxCyc > g.maxCyc {
			g.maxCyc = c.maxCyc
		}
		resp.Configs++
		resp.Results += c.results
	}

	keys := make([]string, 0, len(groups))
	for gk := range groups {
		keys = append(keys, gk)
	}
	sort.Strings(keys)
	for _, gk := range keys {
		g := groups[gk]
		sortCells(g.members)
		gs := GroupStats{
			Key:        make(map[string]string, len(by)),
			Configs:    len(g.members),
			Results:    g.results,
			Runs:       g.runs,
			MinCycles:  g.minCyc,
			MaxCycles:  g.maxCyc,
			MeanCycles: float64(g.cycles) / float64(g.runs),
			P50Cycles:  quantile(g.members, g.results, 50),
			P99Cycles:  quantile(g.members, g.results, 99),
		}
		for i, axis := range by {
			gs.Key[axis] = g.vals[i]
		}
		gs.Area = areaStats(g.members)
		resp.Groups = append(resp.Groups, gs)
	}
	return resp, nil
}

// sortCells orders cells by (mean latency asc, key asc) — the canonical
// order for quantile walks and frontier sweeps.
func sortCells(cs []*cell) {
	sort.Slice(cs, func(i, j int) bool {
		mi, mj := cs[i].mean(), cs[j].mean()
		if mi != mj {
			return mi < mj
		}
		return cs[i].axes.key() < cs[j].axes.key()
	})
}

func areaStats(members []*cell) *AreaStats {
	var as AreaStats
	var tiles, phys int64
	as.MinTiles, as.MinPhys = math.MaxInt64, math.MaxInt64
	for _, c := range members {
		if c.area.Tiles == 0 {
			continue
		}
		as.Configs++
		tiles += c.area.Tiles
		phys += c.area.Phys
		if c.area.Tiles < as.MinTiles {
			as.MinTiles = c.area.Tiles
		}
		if c.area.Tiles > as.MaxTiles {
			as.MaxTiles = c.area.Tiles
		}
		if c.area.Phys < as.MinPhys {
			as.MinPhys = c.area.Phys
		}
		if c.area.Phys > as.MaxPhys {
			as.MaxPhys = c.area.Phys
		}
	}
	if as.Configs == 0 {
		return nil
	}
	as.MeanTiles = float64(tiles) / float64(as.Configs)
	as.MeanPhys = float64(phys) / float64(as.Configs)
	return &as
}

// ParetoPoint is one frontier configuration: no other configuration in
// the slice has both a smaller footprint and a lower mean latency.
type ParetoPoint struct {
	Axes       Axes    `json:"axes"`
	AreaTiles  int64   `json:"area_tiles"`
	PhysQubits int64   `json:"phys_qubits"`
	MeanCycles float64 `json:"mean_cycles"`
	Results    int64   `json:"results"`
}

// ParetoResponse is the latency-vs-area frontier for one benchmark.
// Configs counts the candidate configurations (known footprint) the
// frontier was drawn from.
type ParetoResponse struct {
	Benchmark string            `json:"benchmark"`
	Filter    map[string]string `json:"filter,omitempty"`
	Configs   int               `json:"configs"`
	Frontier  []ParetoPoint     `json:"frontier"`
}

// frontierOf computes the latency-vs-area Pareto frontier of cells with a
// known footprint: sort by (tiles asc, mean asc, key asc), then keep each
// point that strictly improves the best mean seen so far.
func frontierOf(cs []*cell) (frontier []*cell, candidates int) {
	withArea := make([]*cell, 0, len(cs))
	for _, c := range cs {
		if c.area.Tiles > 0 {
			withArea = append(withArea, c)
		}
	}
	candidates = len(withArea)
	sort.Slice(withArea, func(i, j int) bool {
		if withArea[i].area.Tiles != withArea[j].area.Tiles {
			return withArea[i].area.Tiles < withArea[j].area.Tiles
		}
		mi, mj := withArea[i].mean(), withArea[j].mean()
		if mi != mj {
			return mi < mj
		}
		return withArea[i].axes.key() < withArea[j].axes.key()
	})
	best := math.Inf(1)
	for _, c := range withArea {
		if m := c.mean(); m < best {
			frontier = append(frontier, c)
			best = m
		}
	}
	return frontier, candidates
}

// Pareto returns the latency-vs-area frontier for one benchmark's cells,
// optionally restricted by additional axis filters. The unfiltered
// frontier is cached per benchmark and rebuilt only after an ingest
// changed the slice (the warm path is O(frontier)); filtered queries
// compute the frontier over the matching cells, still O(cells in slice).
func (s *Store) Pareto(benchmark string, filter map[string]string) (*ParetoResponse, error) {
	if benchmark == "" {
		return nil, fmt.Errorf("analytics: pareto needs a benchmark")
	}
	if err := validFilter(filter); err != nil {
		return nil, err
	}
	if _, ok := filter["benchmark"]; ok {
		return nil, fmt.Errorf("analytics: pass the benchmark as its own parameter, not a filter")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.queries++

	resp := &ParetoResponse{Benchmark: benchmark, Filter: filter, Frontier: []ParetoPoint{}}
	bs := s.byBench[benchmark]
	if bs == nil {
		return resp, nil
	}
	var frontier []*cell
	if len(filter) == 0 {
		if bs.dirty {
			bs.frontier, _ = frontierOf(bs.cells)
			bs.dirty = false
		}
		frontier = bs.frontier
		for _, c := range bs.cells {
			if c.area.Tiles > 0 {
				resp.Configs++
			}
		}
	} else {
		matching := make([]*cell, 0, len(bs.cells))
		for _, c := range bs.cells {
			if c.matches(filter) {
				matching = append(matching, c)
			}
		}
		frontier, resp.Configs = frontierOf(matching)
	}
	for _, c := range frontier {
		resp.Frontier = append(resp.Frontier, ParetoPoint{
			Axes:       c.axes,
			AreaTiles:  c.area.Tiles,
			PhysQubits: c.area.Phys,
			MeanCycles: c.mean(),
			Results:    c.results,
		})
	}
	return resp, nil
}

// SensitivityPair compares one configuration under two values of the
// swept axis, holding every other axis fixed. Axes holds the a-side
// tuple; Speedup > 1 means the b value is faster.
type SensitivityPair struct {
	Axes        Axes    `json:"axes"`
	AMeanCycles float64 `json:"a_mean_cycles"`
	BMeanCycles float64 `json:"b_mean_cycles"`
	DeltaCycles float64 `json:"delta_cycles"`
	Speedup     float64 `json:"speedup"`
}

// SensitivityResponse reports per-configuration deltas between two values
// of one axis. Unpaired counts a-side configurations with no b-side
// counterpart; Ambiguous counts a-side configurations with several (only
// possible when the swept axis is the scheduler and the b side varies in
// scheduler-private knobs like k/tau_mst).
type SensitivityResponse struct {
	Axis       string            `json:"axis"`
	A          string            `json:"a"`
	B          string            `json:"b"`
	Filter     map[string]string `json:"filter,omitempty"`
	Pairs      []SensitivityPair `json:"pairs"`
	Unpaired   int               `json:"unpaired"`
	Ambiguous  int               `json:"ambiguous"`
	AFaster    int               `json:"a_faster"`
	BFaster    int               `json:"b_faster"`
	Ties       int               `json:"ties"`
	GeoSpeedup float64           `json:"geomean_speedup"`
}

// neutralKey is a cell's identity with the swept axis erased, used to
// match a-side and b-side configurations that agree on every other axis.
// When the swept axis is the scheduler, the RESCQ-only knobs (k, tau_mst)
// are erased too: Options canonicalization zeroes them for non-RESCQ
// schedulers, so a rescq/greedy pair legitimately differs in those axes.
func neutralKey(a Axes, axis string) string {
	switch axis {
	case "tenant":
		a.Tenant = ""
	case "benchmark":
		a.Benchmark = ""
	case "scheduler":
		a.Scheduler = ""
		a.K = 0
		a.TauMST = 0
	case "layout":
		a.Layout = ""
	case "layout_params":
		a.LayoutParams = ""
	case "distance":
		a.Distance = 0
	case "phys_error":
		a.PhysError = 0
	case "k":
		a.K = 0
	case "tau_mst":
		a.TauMST = 0
	case "compression":
		a.Compression = 0
	case "runs":
		a.Runs = 0
	case "seed":
		a.Seed = 0
	}
	return a.key()
}

// Sensitivity pairs every configuration measured under axis=va with its
// counterpart under axis=vb (all other axes fixed) and reports the
// per-pair latency deltas plus a geometric-mean speedup summary.
func (s *Store) Sensitivity(axis, va, vb string, filter map[string]string) (*SensitivityResponse, error) {
	if err := validAxes([]string{axis}); err != nil {
		return nil, err
	}
	if va == "" || vb == "" {
		return nil, fmt.Errorf("analytics: sensitivity needs two values a and b for axis %q", axis)
	}
	if va == vb {
		return nil, fmt.Errorf("analytics: sensitivity values must differ (got %q twice)", va)
	}
	if err := validFilter(filter); err != nil {
		return nil, err
	}
	if _, ok := filter[axis]; ok {
		return nil, fmt.Errorf("analytics: cannot filter on the swept axis %q", axis)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.queries++

	resp := &SensitivityResponse{Axis: axis, A: va, B: vb, Filter: filter, Pairs: []SensitivityPair{}}
	var aSide []*cell
	bIndex := make(map[string][]*cell)
	for _, c := range s.cells {
		if !c.matches(filter) {
			continue
		}
		switch v, _ := c.axes.value(axis); v {
		case va:
			aSide = append(aSide, c)
		case vb:
			nk := neutralKey(c.axes, axis)
			bIndex[nk] = append(bIndex[nk], c)
		}
	}
	sort.Slice(aSide, func(i, j int) bool { return aSide[i].axes.key() < aSide[j].axes.key() })

	var sumLog float64
	var logged int
	for _, ac := range aSide {
		counterparts := bIndex[neutralKey(ac.axes, axis)]
		switch len(counterparts) {
		case 0:
			resp.Unpaired++
			continue
		case 1:
		default:
			resp.Ambiguous++
			continue
		}
		bc := counterparts[0]
		am, bm := ac.mean(), bc.mean()
		p := SensitivityPair{
			Axes:        ac.axes,
			AMeanCycles: am,
			BMeanCycles: bm,
			DeltaCycles: bm - am,
		}
		switch {
		case am > bm:
			resp.BFaster++
		case bm > am:
			resp.AFaster++
		default:
			resp.Ties++
		}
		if am > 0 && bm > 0 {
			p.Speedup = am / bm
			sumLog += math.Log(p.Speedup)
			logged++
		}
		resp.Pairs = append(resp.Pairs, p)
	}
	if logged > 0 {
		resp.GeoSpeedup = math.Exp(sumLog / float64(logged))
	}
	return resp, nil
}
