package analytics

import (
	"strconv"
	"sync"

	"repro/internal/lattice"
	"repro/internal/qbench"
)

// occupancy is the layout-shape half of a footprint: data and ancilla
// tile counts for one (layout, params, qubit count) triple.
type occupancy struct {
	data int
	anc  int
	ok   bool
}

// gridMemo caches lattice builds keyed by layout + canonical params +
// qubit count. Sweeps reuse a handful of layouts across thousands of
// configurations, so cells almost never pay for a build.
var gridMemo sync.Map // string -> occupancy

func gridOccupancy(layoutName, paramsKey string, params lattice.Params, n int) occupancy {
	memoKey := layoutName + "\x1f" + paramsKey + "\x1f" + strconv.Itoa(n)
	if v, ok := gridMemo.Load(memoKey); ok {
		return v.(occupancy)
	}
	occ := occupancy{}
	if n > 0 {
		if g, err := lattice.Build(layoutName, n, params); err == nil {
			occ = occupancy{data: g.NumQubits(), anc: g.NumAncilla(), ok: true}
		}
	}
	gridMemo.Store(memoKey, occ)
	return occ
}

// areaFor derives a configuration's lattice footprint: the occupied tile
// count of the layout built for the benchmark's qubit count, with the
// configuration's ancilla-compression target applied, and the physical
// qubit estimate at the configured code distance (~2d^2 per tile, the
// rotated-surface-code patch plus routing share). Compression uses
// Grid.Compress's nominal removal target — the count it aims for before
// connectivity constraints can stop it early — so the footprint is a
// deterministic function of the axis tuple alone. Unknown benchmarks
// (text-submitted circuits, experiment labels) report a zero footprint
// and are excluded from area aggregates and Pareto frontiers.
func areaFor(a Axes, params lattice.Params) footprint {
	spec, ok := qbench.ByName(a.Benchmark)
	if !ok || spec.Qubits <= 0 {
		return footprint{}
	}
	occ := gridOccupancy(a.Layout, a.LayoutParams, params, spec.Qubits)
	if !occ.ok {
		return footprint{}
	}
	anc := occ.anc
	if a.Compression > 0 {
		fr := a.Compression
		if fr > 1 {
			fr = 1
		}
		anc -= int(fr*float64(anc-occ.data) + 0.5)
		if anc < 0 {
			anc = 0
		}
	}
	tiles := int64(occ.data + anc)
	d := int64(a.Distance)
	if d < 1 {
		d = 1
	}
	return footprint{Tiles: tiles, Phys: tiles * 2 * d * d}
}
