// Package analytics maintains queryable aggregates over the sweep-result
// stream the WAL sees. Every persisted per-configuration result is folded
// into exactly one aggregate cell — keyed by the full axis tuple of the
// configuration — in O(1); queries (group-by, Pareto frontier, scheduler
// sensitivity) merge cells at request time, so their cost is bounded by
// the configured cardinality cap, never by the number of results.
//
// The store is deliberately order-independent: cells accumulate only
// integers (result counts, run counts, cycle sums, min/max), and every
// derived statistic (means, quantiles, frontiers, deltas) is computed at
// query time from those integers with deterministic tie-breaking. Folding
// the same multiset of results in any order therefore yields bit-identical
// query answers — the property the kill-restart identity test relies on,
// since a rebooted daemon replays the WAL prefix and then ingests live
// results in whatever order workers finish.
//
// Replay safety comes from per-job watermarks: Ingest(job, index, …) folds
// a result only when index is exactly the next unseen index for that job,
// so the WAL replay path, the /resume re-checkpoint path, and the live
// persist path can all feed the store without double counting.
package analytics

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"

	"repro/internal/lattice"
)

// DefaultMaxGroups bounds the number of distinct aggregate cells (one per
// complete axis tuple) when no explicit cap is configured. Results for
// configurations beyond the cap are counted as dropped, not aggregated.
const DefaultMaxGroups = 8192

// Axes is the complete axis tuple identifying one sweep configuration.
// String axes hold the canonical spelling (layout names spelled out,
// layout params in lattice.Params.Canonical order); numeric axes hold the
// canonicalized Options values.
type Axes struct {
	Tenant       string  `json:"tenant"`
	Benchmark    string  `json:"benchmark"`
	Scheduler    string  `json:"scheduler"`
	Layout       string  `json:"layout"`
	LayoutParams string  `json:"layout_params,omitempty"`
	Distance     int     `json:"distance"`
	PhysError    float64 `json:"phys_error"`
	K            int     `json:"k"`
	TauMST       int     `json:"tau_mst"`
	Compression  float64 `json:"compression"`
	Runs         int     `json:"runs"`
	Seed         int64   `json:"seed"`
}

var axisNames = []string{
	"tenant", "benchmark", "scheduler", "layout", "layout_params",
	"distance", "phys_error", "k", "tau_mst", "compression", "runs", "seed",
}

// AxisNames lists every queryable axis in canonical order.
func AxisNames() []string { return append([]string(nil), axisNames...) }

func formatFloat(f float64) string { return strconv.FormatFloat(f, 'g', -1, 64) }

// value returns the string form of one axis — the same spelling used in
// query filters, group keys, and sensitivity arguments.
func (a *Axes) value(axis string) (string, bool) {
	switch axis {
	case "tenant":
		return a.Tenant, true
	case "benchmark":
		return a.Benchmark, true
	case "scheduler":
		return a.Scheduler, true
	case "layout":
		return a.Layout, true
	case "layout_params":
		return a.LayoutParams, true
	case "distance":
		return strconv.Itoa(a.Distance), true
	case "phys_error":
		return formatFloat(a.PhysError), true
	case "k":
		return strconv.Itoa(a.K), true
	case "tau_mst":
		return strconv.Itoa(a.TauMST), true
	case "compression":
		return formatFloat(a.Compression), true
	case "runs":
		return strconv.Itoa(a.Runs), true
	case "seed":
		return strconv.FormatInt(a.Seed, 10), true
	}
	return "", false
}

// key is the cell identity: every axis value joined with an unlikely
// separator. Axis values are canonical strings, so equal tuples always
// produce equal keys.
func (a *Axes) key() string {
	vals := make([]string, len(axisNames))
	for i, name := range axisNames {
		vals[i], _ = a.value(name)
	}
	return strings.Join(vals, "\x1f")
}

// Sample is the analytics-relevant content of one persisted result: the
// configuration's axis tuple, its raw layout parameters (for the lattice
// footprint), and the per-seeded-run makespans in cycles. A nil Sample
// still advances the job's replay watermark without aggregating anything —
// the caller uses that for error results, which occupy a result index in
// the WAL but carry no measurements.
type Sample struct {
	Axes   Axes
	Params lattice.Params
	Cycles []int
}

// footprint is a configuration's lattice cost: occupied tiles (data +
// ancilla patches after the nominal compression target) and the physical
// qubit estimate at the configured code distance. Zero means the
// benchmark's qubit count is unknown (text-submitted circuits), which
// excludes the cell from area aggregates and Pareto frontiers.
type footprint struct {
	Tiles int64
	Phys  int64
}

// cell is one materialized aggregate: integer accumulators only, so
// ingest order can never change its state for a given result multiset.
type cell struct {
	axes    Axes
	results int64
	runs    int64
	cycles  int64 // sum of per-run makespans
	minCyc  int64
	maxCyc  int64
	area    footprint
}

func (c *cell) mean() float64 {
	if c.runs == 0 {
		return 0
	}
	return float64(c.cycles) / float64(c.runs)
}

// benchSlice indexes a benchmark's cells and caches its latency-vs-area
// Pareto frontier. The frontier is rebuilt lazily on the first query after
// an ingest dirtied it; with n cells the rebuild is O(n log n) and the
// steady-state query is O(frontier).
type benchSlice struct {
	cells    []*cell
	frontier []*cell
	dirty    bool
}

// Store is the incrementally maintained aggregate store. All methods are
// safe for concurrent use.
type Store struct {
	mu        sync.Mutex
	maxGroups int
	cells     map[string]*cell
	byBench   map[string]*benchSlice

	// counted is the per-job replay watermark: the next result index the
	// store will accept for each job. It makes every ingest call site
	// idempotent across WAL replay, /resume re-checkpoints, and live
	// persists.
	counted map[string]int

	ingested  int64 // results folded into a cell
	skipped   int64 // results that advanced a watermark with nothing to aggregate
	deduped   int64 // results rejected by a watermark (already counted)
	dropped   int64 // results beyond the cardinality cap
	queries   int64
	snapshots int64
	sinceSnap int64 // results folded since the last durable snapshot
}

// New returns an empty store capped at maxGroups distinct aggregate cells
// (<= 0 selects DefaultMaxGroups).
func New(maxGroups int) *Store {
	if maxGroups <= 0 {
		maxGroups = DefaultMaxGroups
	}
	return &Store{
		maxGroups: maxGroups,
		cells:     make(map[string]*cell),
		byBench:   make(map[string]*benchSlice),
		counted:   make(map[string]int),
	}
}

func (s *Store) slice(bench string) *benchSlice {
	bs := s.byBench[bench]
	if bs == nil {
		bs = &benchSlice{}
		s.byBench[bench] = bs
	}
	return bs
}

// Ingest folds one persisted result into its aggregate cell. It accepts
// the result only when index is exactly the job's next unseen result
// index; anything else is a replay duplicate and is rejected. A nil or
// empty sample advances the watermark without aggregating (the result
// slot exists in the WAL but carries no measurements). Reports whether
// the sample was folded into a cell.
func (s *Store) Ingest(jobID string, index int, sm *Sample) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if index != s.counted[jobID] {
		s.deduped++
		return false
	}
	s.counted[jobID] = index + 1
	if sm == nil || len(sm.Cycles) == 0 {
		s.skipped++
		return false
	}

	a := sm.Axes
	a.LayoutParams = sm.Params.Canonical()
	k := a.key()
	c, ok := s.cells[k]
	if !ok {
		if len(s.cells) >= s.maxGroups {
			s.dropped++
			return false
		}
		c = &cell{axes: a, minCyc: math.MaxInt64, area: areaFor(a, sm.Params)}
		s.cells[k] = c
		bs := s.slice(a.Benchmark)
		bs.cells = append(bs.cells, c)
		bs.dirty = true
	}
	oldCycles, oldRuns := c.cycles, c.runs
	c.results++
	for _, cyc := range sm.Cycles {
		v := int64(cyc)
		c.runs++
		c.cycles += v
		if v < c.minCyc {
			c.minCyc = v
		}
		if v > c.maxCyc {
			c.maxCyc = v
		}
	}
	// Repeat folds into an existing cell normally carry the identical
	// deterministic measurement; only when the cell's mean actually moves
	// does the benchmark's cached frontier need a rebuild.
	if ok && oldCycles*c.runs != c.cycles*oldRuns {
		s.slice(a.Benchmark).dirty = true
	}
	s.ingested++
	s.sinceSnap++
	return true
}

// ForgetJob drops a job's replay watermark. Only useful on storeless
// daemons (nothing will ever replay), where terminal jobs would otherwise
// leak watermark entries forever; with a WAL attached, pruning happens at
// snapshot time against the store's job index instead.
func (s *Store) ForgetJob(jobID string) {
	s.mu.Lock()
	delete(s.counted, jobID)
	s.mu.Unlock()
}

// SinceSnapshot reports how many results have been folded since the last
// Snapshot — the amount of WAL re-folding a crash right now would cost.
func (s *Store) SinceSnapshot() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sinceSnap
}

// Stats is the health summary surfaced on /healthz and /metrics.
type Stats struct {
	Groups     int   `json:"groups"`
	GroupCap   int   `json:"group_cap"`
	Benchmarks int   `json:"benchmarks"`
	Ingested   int64 `json:"results_ingested"`
	Skipped    int64 `json:"results_skipped"`
	Deduped    int64 `json:"results_deduped"`
	Dropped    int64 `json:"results_dropped"`
	Queries    int64 `json:"queries"`
	Snapshots  int64 `json:"snapshots"`
	IngestLag  int64 `json:"ingest_lag"`
}

// Stats returns a point-in-time health summary.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Stats{
		Groups:     len(s.cells),
		GroupCap:   s.maxGroups,
		Benchmarks: len(s.byBench),
		Ingested:   s.ingested,
		Skipped:    s.skipped,
		Deduped:    s.deduped,
		Dropped:    s.dropped,
		Queries:    s.queries,
		Snapshots:  s.snapshots,
		IngestLag:  s.sinceSnap,
	}
}

// snapshot is the durable wire form: cells sorted by key so the payload
// is deterministic for a given aggregate state.
type snapshot struct {
	Version  int            `json:"version"`
	Cells    []cellSnap     `json:"cells"`
	Counted  map[string]int `json:"counted,omitempty"`
	Ingested int64          `json:"ingested"`
	Skipped  int64          `json:"skipped"`
	Dropped  int64          `json:"dropped"`
}

type cellSnap struct {
	Axes
	Results   int64 `json:"results"`
	RunCount  int64 `json:"run_count"`
	Cycles    int64 `json:"cycles"`
	MinCycles int64 `json:"min_cycles"`
	MaxCycles int64 `json:"max_cycles"`
	AreaTiles int64 `json:"area_tiles"`
	AreaPhys  int64 `json:"area_phys"`
}

// Snapshot serializes the aggregate state for the WAL compaction path and
// marks the store clean. keep (optional) reports whether a job id is still
// replayable from the WAL; watermarks for evicted jobs are pruned from the
// snapshot, since no future replay can resurface their records.
func (s *Store) Snapshot(keep func(jobID string) bool) []byte {
	s.mu.Lock()
	defer s.mu.Unlock()
	snap := snapshot{
		Version:  1,
		Cells:    make([]cellSnap, 0, len(s.cells)),
		Ingested: s.ingested,
		Skipped:  s.skipped,
		Dropped:  s.dropped,
	}
	keys := make([]string, 0, len(s.cells))
	for k := range s.cells {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		c := s.cells[k]
		snap.Cells = append(snap.Cells, cellSnap{
			Axes:      c.axes,
			Results:   c.results,
			RunCount:  c.runs,
			Cycles:    c.cycles,
			MinCycles: c.minCyc,
			MaxCycles: c.maxCyc,
			AreaTiles: c.area.Tiles,
			AreaPhys:  c.area.Phys,
		})
	}
	if len(s.counted) > 0 {
		snap.Counted = make(map[string]int, len(s.counted))
		for job, next := range s.counted {
			if keep != nil && !keep(job) {
				delete(s.counted, job)
				continue
			}
			snap.Counted[job] = next
		}
	}
	data, err := json.Marshal(snap)
	if err != nil {
		// Everything in the snapshot is plain integers and strings; a
		// marshal failure is a programming error, not a runtime one.
		panic(fmt.Sprintf("analytics: snapshot marshal: %v", err))
	}
	s.snapshots++
	s.sinceSnap = 0
	return data
}

// Restore replaces the store's state with a previously serialized
// snapshot. Used at boot before replaying the WAL suffix, so replay cost
// stays bounded by the compaction cadence rather than total history.
func (s *Store) Restore(data []byte) error {
	var snap snapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		return fmt.Errorf("analytics: restore: %w", err)
	}
	if snap.Version != 1 {
		return fmt.Errorf("analytics: restore: unsupported snapshot version %d", snap.Version)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.cells = make(map[string]*cell, len(snap.Cells))
	s.byBench = make(map[string]*benchSlice)
	for i := range snap.Cells {
		cs := &snap.Cells[i]
		c := &cell{
			axes:    cs.Axes,
			results: cs.Results,
			runs:    cs.RunCount,
			cycles:  cs.Cycles,
			minCyc:  cs.MinCycles,
			maxCyc:  cs.MaxCycles,
			area:    footprint{Tiles: cs.AreaTiles, Phys: cs.AreaPhys},
		}
		s.cells[c.axes.key()] = c
		bs := s.slice(c.axes.Benchmark)
		bs.cells = append(bs.cells, c)
		bs.dirty = true
	}
	s.counted = make(map[string]int, len(snap.Counted))
	for job, next := range snap.Counted {
		s.counted[job] = next
	}
	s.ingested = snap.Ingested
	s.skipped = snap.Skipped
	s.dropped = snap.Dropped
	s.sinceSnap = 0
	return nil
}
