package analytics

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"testing"
)

// mkSample builds a sample for one configuration. Non-RESCQ schedulers
// carry zeroed k/tau_mst, mirroring Options canonicalization.
func mkSample(tenant, bench, sched, layout string, distance int, compression float64, seed int64, cycles ...int) *Sample {
	k, tau := 0, 0
	if sched == "rescq" {
		k, tau = 3, 10
	}
	return &Sample{
		Axes: Axes{
			Tenant:      tenant,
			Benchmark:   bench,
			Scheduler:   sched,
			Layout:      layout,
			Distance:    distance,
			PhysError:   1e-4,
			K:           k,
			TauMST:      tau,
			Compression: compression,
			Runs:        len(cycles),
			Seed:        seed,
		},
		Cycles: cycles,
	}
}

// sweepSamples generates a deterministic multi-axis sweep: per job, a
// sequence of indexed results. Returned as job -> ordered samples.
func sweepSamples() map[string][]*Sample {
	rng := rand.New(rand.NewSource(42))
	jobs := make(map[string][]*Sample)
	tenants := []string{"default", "acme"}
	benches := []string{"gcm_n13", "qft_n18", "custom-circuit"}
	scheds := []string{"rescq", "greedy", "autobraid"}
	layouts := []string{"star", "linear"}
	compressions := []float64{0, 0.5}
	for ji, tenant := range tenants {
		job := fmt.Sprintf("job-%d", ji)
		for _, bench := range benches {
			for _, sched := range scheds {
				for _, layout := range layouts {
					for _, comp := range compressions {
						base := 1000 + rng.Intn(9000)
						cycles := []int{base, base + rng.Intn(100), base + rng.Intn(100)}
						jobs[job] = append(jobs[job],
							mkSample(tenant, bench, sched, layout, 7, comp, 1, cycles...))
					}
				}
			}
		}
		// An error result: occupies an index, aggregates nothing.
		jobs[job] = append(jobs[job], nil)
	}
	return jobs
}

func ingestAll(t *testing.T, st *Store, jobs map[string][]*Sample, order []string) {
	t.Helper()
	next := make(map[string]int)
	for _, job := range order {
		i := next[job]
		st.Ingest(job, i, jobs[job][i])
		next[job] = i + 1
	}
}

// interleavings returns job-id sequences that respect per-job index order
// but interleave jobs differently.
func interleavings(jobs map[string][]*Sample, seed int64) []string {
	var order []string
	remaining := make(map[string]int)
	var ids []string
	for job, ss := range jobs {
		remaining[job] = len(ss)
		ids = append(ids, job)
	}
	rng := rand.New(rand.NewSource(seed))
	for len(remaining) > 0 {
		job := ids[rng.Intn(len(ids))]
		if remaining[job] == 0 {
			continue
		}
		order = append(order, job)
		if remaining[job]--; remaining[job] == 0 {
			delete(remaining, job)
		}
	}
	return order
}

func queryFingerprint(t *testing.T, st *Store) []byte {
	t.Helper()
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	add := func(v any, err error) {
		if err != nil {
			t.Fatalf("query: %v", err)
		}
		if err := enc.Encode(v); err != nil {
			t.Fatalf("encode: %v", err)
		}
	}
	add(st.GroupBy([]string{"scheduler", "benchmark"}, nil))
	add(st.GroupBy([]string{"layout"}, map[string]string{"tenant": "acme"}))
	add(st.GroupBy([]string{"compression"}, map[string]string{"benchmark": "gcm_n13"}))
	add(st.Pareto("gcm_n13", nil))
	add(st.Pareto("qft_n18", map[string]string{"scheduler": "rescq"}))
	add(st.Sensitivity("scheduler", "rescq", "greedy", nil))
	add(st.Sensitivity("compression", "0", "0.5", map[string]string{"layout": "star"}))
	return buf.Bytes()
}

// TestIncrementalMatchesRecompute is the equivalence gate: the
// incrementally maintained aggregates must match a from-scratch
// recompute exactly, for any ingest interleaving, including one that
// snapshots and restores midway.
func TestIncrementalMatchesRecompute(t *testing.T) {
	jobs := sweepSamples()

	// Reference: naive per-cell recompute with independent bookkeeping.
	type naive struct {
		results, runs, cycles, minC, maxC int64
	}
	expect := make(map[string]*naive)
	for _, ss := range jobs {
		for _, sm := range ss {
			if sm == nil {
				continue
			}
			a := sm.Axes
			a.LayoutParams = sm.Params.Canonical()
			n := expect[a.key()]
			if n == nil {
				n = &naive{minC: math.MaxInt64}
				expect[a.key()] = n
			}
			n.results++
			for _, c := range sm.Cycles {
				n.runs++
				n.cycles += int64(c)
				if int64(c) < n.minC {
					n.minC = int64(c)
				}
				if int64(c) > n.maxC {
					n.maxC = int64(c)
				}
			}
		}
	}

	base := New(0)
	ingestAll(t, base, jobs, interleavings(jobs, 1))

	// Per-cell equality against the naive recompute: group by all axes so
	// each group is exactly one cell.
	resp, err := base.GroupBy(AxisNames(), nil)
	if err != nil {
		t.Fatalf("groupby all axes: %v", err)
	}
	if len(resp.Groups) != len(expect) {
		t.Fatalf("cells = %d, naive recompute has %d", len(resp.Groups), len(expect))
	}
	for _, g := range resp.Groups {
		vals := make([]string, 0, len(axisNames))
		for _, name := range axisNames {
			vals = append(vals, g.Key[name])
		}
		n := expect[joinKey(vals)]
		if n == nil {
			t.Fatalf("unexpected group %v", g.Key)
		}
		if g.Results != n.results || g.Runs != n.runs || g.MinCycles != n.minC || g.MaxCycles != n.maxC {
			t.Fatalf("group %v = {results %d runs %d min %d max %d}, naive {%d %d %d %d}",
				g.Key, g.Results, g.Runs, g.MinCycles, g.MaxCycles, n.results, n.runs, n.minC, n.maxC)
		}
		if want := float64(n.cycles) / float64(n.runs); g.MeanCycles != want {
			t.Fatalf("group %v mean = %v, naive %v", g.Key, g.MeanCycles, want)
		}
	}

	want := queryFingerprint(t, base)
	for seed := int64(2); seed < 6; seed++ {
		st := New(0)
		ingestAll(t, st, jobs, interleavings(jobs, seed))
		if got := queryFingerprint(t, st); !bytes.Equal(got, want) {
			t.Fatalf("interleaving %d: query answers differ from base ingest order", seed)
		}
	}

	// Snapshot midway, restore into a fresh store, finish the ingest:
	// answers must still be identical (the kill-restart path in miniature).
	order := interleavings(jobs, 7)
	half := len(order) / 2
	st := New(0)
	ingestAll(t, st, jobs, order[:half])
	snap := st.Snapshot(nil)
	st2 := New(0)
	if err := st2.Restore(snap); err != nil {
		t.Fatalf("restore: %v", err)
	}
	// Replay the first half again (all rejected by watermarks), then the rest.
	ingestAll(t, st2, jobs, order)
	if got := queryFingerprint(t, st2); !bytes.Equal(got, want) {
		t.Fatalf("snapshot/restore midway: query answers differ")
	}
	if st2.Stats().Deduped != int64(half) {
		t.Fatalf("deduped = %d, want %d (the replayed first half)", st2.Stats().Deduped, half)
	}
}

func joinKey(vals []string) string {
	out := ""
	for i, v := range vals {
		if i > 0 {
			out += "\x1f"
		}
		out += v
	}
	return out
}

func TestWatermarkRejectsReplaysAndGaps(t *testing.T) {
	st := New(0)
	sm := mkSample("default", "gcm_n13", "rescq", "star", 7, 0, 1, 100)
	if !st.Ingest("j1", 0, sm) {
		t.Fatal("first ingest rejected")
	}
	if st.Ingest("j1", 0, sm) {
		t.Fatal("replayed index accepted")
	}
	if st.Ingest("j1", 2, sm) {
		t.Fatal("gapped index accepted")
	}
	if !st.Ingest("j1", 1, sm) {
		t.Fatal("next index rejected")
	}
	stats := st.Stats()
	if stats.Ingested != 2 || stats.Deduped != 2 {
		t.Fatalf("stats = %+v, want 2 ingested / 2 deduped", stats)
	}
	if stats.Groups != 1 {
		t.Fatalf("groups = %d, want 1 (same configuration)", stats.Groups)
	}
}

func TestNilSampleAdvancesWatermark(t *testing.T) {
	st := New(0)
	if st.Ingest("j1", 0, nil) {
		t.Fatal("nil sample reported as folded")
	}
	if !st.Ingest("j1", 1, mkSample("default", "gcm_n13", "rescq", "star", 7, 0, 1, 100)) {
		t.Fatal("index after nil sample rejected: watermark did not advance")
	}
	if st.Stats().Skipped != 1 {
		t.Fatalf("skipped = %d, want 1", st.Stats().Skipped)
	}
}

func TestCardinalityCap(t *testing.T) {
	st := New(2)
	for i, bench := range []string{"gcm_n13", "qft_n18", "dnn_n16"} {
		st.Ingest("j", i, mkSample("default", bench, "rescq", "star", 7, 0, 1, 100))
	}
	stats := st.Stats()
	if stats.Groups != 2 || stats.Dropped != 1 {
		t.Fatalf("stats = %+v, want 2 groups / 1 dropped at cap", stats)
	}
	// Results for existing cells still aggregate at the cap.
	if !st.Ingest("j", 3, mkSample("default", "gcm_n13", "rescq", "star", 7, 0, 1, 100)) {
		t.Fatal("existing cell rejected at cap")
	}
}

func TestSnapshotPrunesEvictedJobs(t *testing.T) {
	st := New(0)
	st.Ingest("keep", 0, mkSample("default", "gcm_n13", "rescq", "star", 7, 0, 1, 100))
	st.Ingest("gone", 0, mkSample("default", "qft_n18", "rescq", "star", 7, 0, 1, 200))
	snap := st.Snapshot(func(job string) bool { return job == "keep" })
	st2 := New(0)
	if err := st2.Restore(snap); err != nil {
		t.Fatalf("restore: %v", err)
	}
	// The kept job's watermark survives; the evicted job's does not.
	if st2.Ingest("keep", 0, mkSample("default", "gcm_n13", "rescq", "star", 7, 0, 1, 100)) {
		t.Fatal("kept job's replayed record accepted after restore")
	}
	if !st2.Ingest("gone", 0, mkSample("default", "wstate_n27", "rescq", "star", 7, 0, 1, 300)) {
		t.Fatal("pruned job cannot start over (watermark leaked through snapshot)")
	}
	// Aggregates themselves survive pruning: the cells are intact.
	if st2.Stats().Groups != 3 {
		t.Fatalf("groups after restore = %d, want 3", st2.Stats().Groups)
	}
}

func TestForgetJobDropsWatermark(t *testing.T) {
	st := New(0)
	st.Ingest("j", 0, mkSample("default", "gcm_n13", "rescq", "star", 7, 0, 1, 100))
	st.ForgetJob("j")
	if !st.Ingest("j", 0, mkSample("default", "gcm_n13", "rescq", "star", 7, 0, 1, 100)) {
		t.Fatal("watermark survived ForgetJob")
	}
}

func TestParetoFrontierCachedAndInvalidated(t *testing.T) {
	st := New(0)
	// Distinct tile counts come from the compression axis (distance only
	// scales physical qubits): tiles shrink as compression grows.
	slow := mkSample("default", "gcm_n13", "greedy", "star", 7, 0, 1, 1000)
	mid := mkSample("default", "gcm_n13", "greedy", "star", 7, 0.5, 1, 2000)
	st.Ingest("j", 0, slow)
	st.Ingest("j", 1, mid)
	resp, err := st.Pareto("gcm_n13", nil)
	if err != nil {
		t.Fatalf("pareto: %v", err)
	}
	if len(resp.Frontier) != 2 || resp.Configs != 2 {
		t.Fatalf("frontier = %d points over %d configs, want 2/2", len(resp.Frontier), resp.Configs)
	}
	if resp.Frontier[0].AreaTiles >= resp.Frontier[1].AreaTiles {
		t.Fatalf("frontier not ordered by ascending area: %+v", resp.Frontier)
	}
	// A smaller-and-faster configuration dominates everything.
	fast := mkSample("default", "gcm_n13", "rescq", "star", 7, 1.0, 1, 10)
	st.Ingest("j", 2, fast)
	resp, err = st.Pareto("gcm_n13", nil)
	if err != nil {
		t.Fatalf("pareto after ingest: %v", err)
	}
	if len(resp.Frontier) != 1 || resp.Frontier[0].Axes.Scheduler != "rescq" {
		t.Fatalf("dominating point did not collapse the frontier: %+v", resp.Frontier)
	}
}

func TestUnknownBenchmarkExcludedFromArea(t *testing.T) {
	st := New(0)
	st.Ingest("j", 0, mkSample("default", "not-a-qbench", "rescq", "star", 7, 0, 1, 100))
	resp, err := st.Pareto("not-a-qbench", nil)
	if err != nil {
		t.Fatalf("pareto: %v", err)
	}
	if len(resp.Frontier) != 0 || resp.Configs != 0 {
		t.Fatalf("unknown benchmark produced area points: %+v", resp)
	}
	gb, err := st.GroupBy([]string{"benchmark"}, nil)
	if err != nil {
		t.Fatalf("groupby: %v", err)
	}
	if gb.Groups[0].Area != nil {
		t.Fatalf("unknown benchmark produced area stats: %+v", gb.Groups[0].Area)
	}
}

func TestSensitivityPairsAcrossSchedulerPrivateKnobs(t *testing.T) {
	st := New(0)
	// rescq carries k=3/tau_mst=10; greedy carries zeros. The pairing
	// must bridge that canonicalization gap.
	st.Ingest("j", 0, mkSample("default", "gcm_n13", "rescq", "star", 7, 0, 1, 100, 100))
	st.Ingest("j", 1, mkSample("default", "gcm_n13", "greedy", "star", 7, 0, 1, 200, 200))
	st.Ingest("j", 2, mkSample("default", "qft_n18", "greedy", "star", 7, 0, 1, 300))
	resp, err := st.Sensitivity("scheduler", "greedy", "rescq", nil)
	if err != nil {
		t.Fatalf("sensitivity: %v", err)
	}
	if len(resp.Pairs) != 1 || resp.Unpaired != 1 {
		t.Fatalf("pairs = %d unpaired = %d, want 1/1", len(resp.Pairs), resp.Unpaired)
	}
	p := resp.Pairs[0]
	if p.AMeanCycles != 200 || p.BMeanCycles != 100 || p.Speedup != 2 {
		t.Fatalf("pair = %+v, want greedy 200 vs rescq 100, speedup 2", p)
	}
	if resp.BFaster != 1 || resp.GeoSpeedup != 2 {
		t.Fatalf("summary = %+v, want b_faster 1, geomean 2", resp)
	}
}

func TestQueryValidation(t *testing.T) {
	st := New(0)
	if _, err := st.GroupBy(nil, nil); err == nil {
		t.Fatal("empty by accepted")
	}
	if _, err := st.GroupBy([]string{"nope"}, nil); err == nil {
		t.Fatal("unknown by axis accepted")
	}
	if _, err := st.GroupBy([]string{"layout"}, map[string]string{"nope": "x"}); err == nil {
		t.Fatal("unknown filter axis accepted")
	}
	if _, err := st.Pareto("", nil); err == nil {
		t.Fatal("empty benchmark accepted")
	}
	if _, err := st.Pareto("gcm_n13", map[string]string{"benchmark": "x"}); err == nil {
		t.Fatal("benchmark filter accepted")
	}
	if _, err := st.Sensitivity("scheduler", "a", "a", nil); err == nil {
		t.Fatal("equal sensitivity values accepted")
	}
	if _, err := st.Sensitivity("scheduler", "a", "b", map[string]string{"scheduler": "x"}); err == nil {
		t.Fatal("filter on swept axis accepted")
	}
}

func TestAreaCompressionShrinksFootprint(t *testing.T) {
	full := mkSample("default", "gcm_n13", "rescq", "star", 7, 0, 1, 100)
	half := mkSample("default", "gcm_n13", "rescq", "star", 7, 0.5, 1, 100)
	fullFp := areaFor(full.Axes, nil)
	halfFp := areaFor(half.Axes, nil)
	if fullFp.Tiles == 0 || halfFp.Tiles == 0 {
		t.Fatalf("known benchmark produced zero footprint: %+v %+v", fullFp, halfFp)
	}
	if halfFp.Tiles >= fullFp.Tiles {
		t.Fatalf("compression 0.5 did not shrink tiles: %d >= %d", halfFp.Tiles, fullFp.Tiles)
	}
	if fullFp.Phys != fullFp.Tiles*2*7*7 {
		t.Fatalf("phys = %d, want tiles*2d^2 = %d", fullFp.Phys, fullFp.Tiles*2*7*7)
	}
}

func TestSnapshotDeterministic(t *testing.T) {
	mk := func() *Store {
		st := New(0)
		jobs := sweepSamples()
		ingestAll(t, st, jobs, interleavings(jobs, 3))
		return st
	}
	a, b := mk().Snapshot(nil), mk().Snapshot(nil)
	if !bytes.Equal(a, b) {
		t.Fatal("snapshot bytes differ across identical ingests")
	}
	var decoded map[string]any
	if err := json.Unmarshal(a, &decoded); err != nil {
		t.Fatalf("snapshot is not valid JSON: %v", err)
	}
}
