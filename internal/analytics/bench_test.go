package analytics

import (
	"fmt"
	"testing"
)

// benchSamples builds `cells` distinct configurations spread over real
// benchmarks, schedulers, layouts, compressions, and seeds — the axis
// shape of a design-space sweep.
func benchSamples(cells int) []*Sample {
	benches := []string{"gcm_n13", "qft_n18", "dnn_n16", "vqe_n13"}
	scheds := []string{"rescq", "greedy", "autobraid"}
	layouts := []string{"star", "linear"}
	compressions := []float64{0, 0.25, 0.5, 0.75}
	out := make([]*Sample, 0, cells)
	for i := 0; len(out) < cells; i++ {
		sm := mkSample(
			"default",
			benches[i%len(benches)],
			scheds[(i/4)%len(scheds)],
			layouts[(i/12)%len(layouts)],
			7,
			compressions[(i/24)%len(compressions)],
			int64(1+i/96), // seed axis fans out the remaining cardinality
			1000+i, 1100+i, 1200+i,
		)
		out = append(out, sm)
	}
	return out
}

// benchStore folds `results` results round-robin over `cells` distinct
// configurations, in jobs of 1000 results each.
func benchStore(cells, results int) *Store {
	st := New(0)
	samples := benchSamples(cells)
	for i := 0; i < results; i++ {
		st.Ingest(fmt.Sprintf("job-%d", i/1000), i%1000, samples[i%len(samples)])
	}
	return st
}

// BenchmarkAnalyticsIngest pins the per-result update cost: one watermark
// check plus integer accumulation into an existing cell (the steady state
// of a long sweep). Gated in the bench-compare job.
func BenchmarkAnalyticsIngest(b *testing.B) {
	st := New(0)
	samples := benchSamples(1024)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st.Ingest("bench", i, samples[i%len(samples)])
	}
}

// BenchmarkAnalyticsQueryWarm pins the steady-state query cost over a
// 100k-result aggregate: a two-axis group-by plus a cached-frontier
// Pareto read. The cost must be O(cells), independent of the 100k result
// count — this is the "never rescan the log" acceptance benchmark.
// Gated in the bench-compare job.
func BenchmarkAnalyticsQueryWarm(b *testing.B) {
	st := benchStore(1024, 100_000)
	if _, err := st.Pareto("gcm_n13", nil); err != nil { // warm the frontier cache
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := st.GroupBy([]string{"scheduler", "layout"}, nil); err != nil {
			b.Fatal(err)
		}
		if _, err := st.Pareto("gcm_n13", nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAnalyticsQueryCold measures the first query after an ingest
// dirtied a benchmark's slice: the O(n log n) frontier rebuild over that
// benchmark's cells. Informational (recorded, not gated): the rebuild is
// microseconds and rides bench-smoke.
func BenchmarkAnalyticsQueryCold(b *testing.B) {
	st := benchStore(1024, 100_000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st.mu.Lock()
		st.byBench["gcm_n13"].dirty = true
		st.mu.Unlock()
		if _, err := st.Pareto("gcm_n13", nil); err != nil {
			b.Fatal(err)
		}
	}
}
