package rescq

import (
	"reflect"
	"strings"
	"testing"
)

func TestOptionsWithDefaults(t *testing.T) {
	cases := []struct {
		name string
		in   Options
		want Options
	}{
		{
			name: "zero value gets every default",
			in:   Options{},
			want: Options{Scheduler: RESCQ, Distance: 7, PhysError: 1e-4, Runs: 3, Seed: 1},
		},
		{
			name: "explicit fields survive",
			in:   Options{Scheduler: Greedy, Distance: 11, PhysError: 1e-3, Runs: 5, Seed: 42},
			want: Options{Scheduler: Greedy, Distance: 11, PhysError: 1e-3, Runs: 5, Seed: 42},
		},
		{
			name: "K and TauMST are scheduler knobs, not defaulted here",
			in:   Options{K: 50, TauMST: 200},
			want: Options{Scheduler: RESCQ, Distance: 7, PhysError: 1e-4, K: 50, TauMST: 200, Runs: 3, Seed: 1},
		},
		{
			name: "Parallel with Runs=1 stays a serial single run",
			in:   Options{Parallel: true, Runs: 1},
			want: Options{Scheduler: RESCQ, Distance: 7, PhysError: 1e-4, Runs: 1, Seed: 1, Parallel: true},
		},
		{
			name: "Compression zero means uncompressed, not defaulted",
			in:   Options{Compression: 0},
			want: Options{Scheduler: RESCQ, Distance: 7, PhysError: 1e-4, Runs: 3, Seed: 1},
		},
		{
			name: "negative runs pass through for Validate to reject",
			in:   Options{Runs: -2},
			want: Options{Scheduler: RESCQ, Distance: 7, PhysError: 1e-4, Runs: -2, Seed: 1},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := tc.in.withDefaults(); !reflect.DeepEqual(got, tc.want) {
				t.Errorf("withDefaults() = %+v, want %+v", got, tc.want)
			}
		})
	}
}

func TestOptionsValidate(t *testing.T) {
	cases := []struct {
		name    string
		in      Options
		wantErr string // "" means valid
	}{
		{"zero value is valid after defaults", Options{}, ""},
		{"all three schedulers valid", Options{Scheduler: Greedy}, ""},
		{"autobraid valid", Options{Scheduler: AutoBraid}, ""},
		{"rescq valid", Options{Scheduler: RESCQ}, ""},
		{"unknown scheduler", Options{Scheduler: "magic"}, "unknown scheduler"},
		{"distance too small", Options{Distance: 1}, "distance"},
		{"even distance", Options{Distance: 8}, "distance"},
		{"negative distance", Options{Distance: -7}, "distance"},
		{"minimum odd distance valid", Options{Distance: 3}, ""},
		{"negative phys error", Options{PhysError: -1e-4}, "error rate"},
		{"phys error at half", Options{PhysError: 0.5}, "error rate"},
		{"phys error above half", Options{PhysError: 0.9}, "error rate"},
		{"tiny phys error valid", Options{PhysError: 1e-9}, ""},
		{"negative compression", Options{Compression: -0.1}, "compression"},
		{"compression above one", Options{Compression: 1.1}, "compression"},
		{"full compression valid", Options{Compression: 1.0}, ""},
		{"negative runs", Options{Runs: -1}, "runs"},
		{"runs default from zero is valid", Options{Runs: 0}, ""},
		{"parallel with one run valid", Options{Parallel: true, Runs: 1}, ""},
		{"parallel with defaults valid", Options{Parallel: true}, ""},
		{"negative k", Options{K: -1}, "tau_mst"},
		{"negative tau", Options{TauMST: -5}, "tau_mst"},
		{"explicit paper operating point valid", Options{K: 25, TauMST: 100}, ""},
		{"everything wrong reports scheduler first", Options{Scheduler: "x", Distance: 2, Runs: -1}, "unknown scheduler"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.in.Validate()
			if tc.wantErr == "" {
				if err != nil {
					t.Errorf("Validate() = %v, want nil", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Errorf("Validate() = %v, want error containing %q", err, tc.wantErr)
			}
		})
	}
}

func TestOptionsCanonical(t *testing.T) {
	cases := []struct {
		name string
		in   Options
		want Options
	}{
		{
			name: "defaults are materialized, including the engine-side K/TauMST",
			in:   Options{},
			want: Options{Scheduler: RESCQ, Distance: 7, PhysError: 1e-4, K: 25, TauMST: 100, Runs: 3, Seed: 1},
		},
		{
			name: "parallel is an execution detail, stripped",
			in:   Options{Parallel: true},
			want: Options{Scheduler: RESCQ, Distance: 7, PhysError: 1e-4, K: 25, TauMST: 100, Runs: 3, Seed: 1},
		},
		{
			name: "rescq keeps its K and TauMST knobs",
			in:   Options{K: 50, TauMST: 200},
			want: Options{Scheduler: RESCQ, Distance: 7, PhysError: 1e-4, K: 50, TauMST: 200, Runs: 3, Seed: 1},
		},
		{
			name: "static schedulers ignore K and TauMST, zeroed",
			in:   Options{Scheduler: Greedy, K: 50, TauMST: 200},
			want: Options{Scheduler: Greedy, Distance: 7, PhysError: 1e-4, Runs: 3, Seed: 1},
		},
		{
			name: "explicit star layout with no params is the default, cleared",
			in:   Options{Layout: "star"},
			want: Options{Scheduler: RESCQ, Distance: 7, PhysError: 1e-4, K: 25, TauMST: 100, Runs: 3, Seed: 1},
		},
		{
			name: "non-default layouts and their params survive",
			in:   Options{Layout: "compact", LayoutParams: map[string]string{"fraction": "0.5"}},
			want: Options{Scheduler: RESCQ, Layout: "compact", LayoutParams: map[string]string{"fraction": "0.5"}, Distance: 7, PhysError: 1e-4, K: 25, TauMST: 100, Runs: 3, Seed: 1},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := tc.in.Canonical(); !reflect.DeepEqual(got, tc.want) {
				t.Errorf("Canonical() = %+v, want %+v", got, tc.want)
			}
		})
	}
}

func TestCacheKey(t *testing.T) {
	base := Options{Runs: 2, Seed: 7}
	key := CacheKey("bench:gcm_n13", base)
	if len(key) != 64 { // sha256 hex
		t.Fatalf("key %q is not a sha256 hex digest", key)
	}

	same := []Options{
		{Runs: 2, Seed: 7, Parallel: true},
		{Scheduler: RESCQ, Distance: 7, PhysError: 1e-4, Runs: 2, Seed: 7},
		// The paper operating point spelled explicitly: the engine treats
		// K=0/TauMST=0 as 25/100, so the keys must agree.
		{K: 25, TauMST: 100, Runs: 2, Seed: 7},
		// The default layout spelled explicitly.
		{Layout: "star", Runs: 2, Seed: 7},
	}
	for i, o := range same {
		if got := CacheKey("bench:gcm_n13", o); got != key {
			t.Errorf("equivalent options %d produced a different key", i)
		}
	}

	different := map[string]string{
		"circuit":     CacheKey("bench:qft_n18", base),
		"scheduler":   CacheKey("bench:gcm_n13", Options{Scheduler: Greedy, Runs: 2, Seed: 7}),
		"distance":    CacheKey("bench:gcm_n13", Options{Distance: 9, Runs: 2, Seed: 7}),
		"phys error":  CacheKey("bench:gcm_n13", Options{PhysError: 1e-3, Runs: 2, Seed: 7}),
		"k":           CacheKey("bench:gcm_n13", Options{K: 50, Runs: 2, Seed: 7}),
		"tau":         CacheKey("bench:gcm_n13", Options{TauMST: 200, Runs: 2, Seed: 7}),
		"compression": CacheKey("bench:gcm_n13", Options{Compression: 0.5, Runs: 2, Seed: 7}),
		"runs":        CacheKey("bench:gcm_n13", Options{Runs: 3, Seed: 7}),
		"seed":        CacheKey("bench:gcm_n13", Options{Runs: 2, Seed: 8}),
		"layout":      CacheKey("bench:gcm_n13", Options{Layout: "linear", Runs: 2, Seed: 7}),
		"layout params": CacheKey("bench:gcm_n13",
			Options{Layout: "compact", LayoutParams: map[string]string{"fraction": "0.5"}, Runs: 2, Seed: 7}),
		"layout param value": CacheKey("bench:gcm_n13",
			Options{Layout: "compact", LayoutParams: map[string]string{"fraction": "0.25"}, Runs: 2, Seed: 7}),
	}
	seen := map[string]string{key: "base"}
	for what, k := range different {
		if prev, dup := seen[k]; dup {
			t.Errorf("changing %s collided with %s", what, prev)
		}
		seen[k] = what
	}

	// K/TauMST are dead knobs for the static baselines: keys must agree.
	a := CacheKey("bench:gcm_n13", Options{Scheduler: Greedy, K: 25})
	b := CacheKey("bench:gcm_n13", Options{Scheduler: Greedy, K: 100, TauMST: 7})
	if a != b {
		t.Error("greedy keys should ignore the RESCQ-only knobs")
	}
}
