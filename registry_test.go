package rescq_test

// registry_test.go proves the two extension axes from the outside: a
// scheduler and a layout registered by a foreign package (this test) are
// fully runnable through rescq.Run without any change to the rescq
// package, and the default star path keeps its exact pre-registry cache
// identity.

import (
	"slices"
	"strings"
	"sync"
	"testing"

	rescq "repro"
	"repro/internal/lattice"
	"repro/internal/sched"
	"repro/internal/sim"
)

// pinnedDefaultKey is CacheKey("bench:gcm_n13", Options{}) as computed
// before the layout axis existed. It must never drift: the daemon's result
// cache and every stored key in the wild depend on layout-unset requests
// hashing exactly as they always did.
const pinnedDefaultKey = "5ba0524a78ec383e0dbef96c570d7e517b58544e031eafc5b60c638b9ece938f"

func TestCacheKeyPinnedForLayoutUnsetRequests(t *testing.T) {
	if got := rescq.CacheKey("bench:gcm_n13", rescq.Options{}); got != pinnedDefaultKey {
		t.Fatalf("layout-unset cache key drifted:\ngot  %s\nwant %s", got, pinnedDefaultKey)
	}
	explicit := rescq.Options{Layout: "star"}
	if got := rescq.CacheKey("bench:gcm_n13", explicit); got != pinnedDefaultKey {
		t.Fatalf("explicit star cache key differs from the pinned default key: %s", got)
	}
	if got := rescq.CacheKey("bench:gcm_n13", rescq.Options{Layout: "linear"}); got == pinnedDefaultKey {
		t.Fatal("linear layout shares the star cache key")
	}
	// A layout-unset request WITH params must not alias the plain default
	// key (the params change — or invalidate — the fabric).
	withParams := rescq.Options{LayoutParams: map[string]string{"fraction": "0.5"}}
	if got := rescq.CacheKey("bench:gcm_n13", withParams); got == pinnedDefaultKey {
		t.Fatal("layout-unset options with params alias the default star cache key")
	}
	explicitWithParams := rescq.Options{Layout: "star", LayoutParams: map[string]string{"fraction": "0.5"}}
	if rescq.CacheKey("bench:gcm_n13", withParams) != rescq.CacheKey("bench:gcm_n13", explicitWithParams) {
		t.Fatal("implicit and explicit default-layout spellings with equal params should share a key")
	}
}

// TestValidateRejectsBadLayoutParams asserts malformed layout knobs are
// caught at validation time (a 400 at the daemon), not inside the queued
// job.
func TestValidateRejectsBadLayoutParams(t *testing.T) {
	cases := []struct {
		name string
		opts rescq.Options
		want string
	}{
		{"params on the default layout", rescq.Options{LayoutParams: map[string]string{"fraction": "0.5"}}, "takes no parameters"},
		{"params on explicit star", rescq.Options{Layout: "star", LayoutParams: map[string]string{"x": "1"}}, "takes no parameters"},
		{"typoed compact key", rescq.Options{Layout: "compact", LayoutParams: map[string]string{"fractoin": "0.5"}}, "unknown parameter"},
		{"out-of-range compact fraction", rescq.Options{Layout: "compact", LayoutParams: map[string]string{"fraction": "1.5"}}, "out of [0,1]"},
		{"custom without spec", rescq.Options{Layout: "custom"}, "spec"},
		{"custom with malformed spec", rescq.Options{Layout: "custom", LayoutParams: map[string]string{"spec": "{"}}, "bad spec JSON"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.opts.Validate()
			if err == nil {
				t.Fatalf("Validate(%+v) accepted, want error containing %q", tc.opts, tc.want)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not contain %q", err, tc.want)
			}
		})
	}
	// A well-formed custom spec validates even though the qubit count is
	// unknown until run time.
	ok := rescq.Options{Layout: "custom", LayoutParams: map[string]string{"spec": `{"tiles":["...",".D.","..."]}`}}
	if err := ok.Validate(); err != nil {
		t.Fatalf("valid custom spec rejected: %v", err)
	}
}

// renamedScheduler wraps an existing policy under a new registry name, the
// smallest possible externally defined scheduler.
type renamedScheduler struct {
	sim.Scheduler
	name string
}

func (r renamedScheduler) Name() string { return r.name }

// registerTestExtensions runs once per process: Register panics on
// duplicates, so repeated test executions (go test -count=2) must not
// re-register.
var registerTestExtensions = sync.OnceFunc(func() {
	sched.Register("test-ext-sched", func(p sched.Params) (sim.Scheduler, error) {
		return renamedScheduler{Scheduler: sched.NewGreedy(), name: "test-ext-sched"}, nil
	})
	lattice.Register("test-ext-layout", func(n int, p lattice.Params) (*lattice.Grid, error) {
		// A denser-than-star tiling: one full ancilla row per qubit row.
		return lattice.NewLinearGrid(n), nil
	})
})

func TestCustomSchedulerAndLayoutViaRegistries(t *testing.T) {
	registerTestExtensions()

	if !slices.Contains(rescq.Schedulers(), "test-ext-sched") {
		t.Fatal("registered scheduler not visible through rescq.Schedulers()")
	}
	if !slices.Contains(rescq.Layouts(), "test-ext-layout") {
		t.Fatal("registered layout not visible through rescq.Layouts()")
	}

	sum, err := rescq.Run("vqe_n13", rescq.Options{
		Scheduler: "test-ext-sched",
		Layout:    "test-ext-layout",
		Distance:  5,
		Runs:      1,
	})
	if err != nil {
		t.Fatalf("Run with registered scheduler+layout: %v", err)
	}
	if sum.Scheduler != "test-ext-sched" {
		t.Errorf("summary scheduler = %q, want test-ext-sched", sum.Scheduler)
	}
	if sum.MeanCycles <= 0 {
		t.Errorf("mean cycles = %v, want > 0", sum.MeanCycles)
	}
}

func TestBuiltinLayoutsRunEndToEnd(t *testing.T) {
	base := rescq.Options{Distance: 5, Runs: 1}
	cycles := map[string]float64{}
	for _, layout := range []string{"star", "linear", "compact"} {
		opts := base
		opts.Layout = layout
		sum, err := rescq.Run("vqe_n13", opts)
		if err != nil {
			t.Fatalf("layout %s: %v", layout, err)
		}
		if sum.MeanCycles <= 0 {
			t.Fatalf("layout %s: mean cycles %v", layout, sum.MeanCycles)
		}
		cycles[layout] = sum.MeanCycles
	}
	t.Logf("vqe_n13 mean cycles by layout: %v", cycles)

	spec := `{"tiles": [
		".....",
		".D.D.",
		".....",
		".D.D.",
		"....."
	]}`
	sum, err := rescq.RunCircuitText("ghz4", "qubits 4\n3\nh 0\ncx 0 1\ncx 2 3\n",
		rescq.Options{Layout: "custom", LayoutParams: map[string]string{"spec": spec}, Runs: 1})
	if err != nil {
		t.Fatalf("custom layout run: %v", err)
	}
	if sum.MeanCycles <= 0 {
		t.Fatalf("custom layout: mean cycles %v", sum.MeanCycles)
	}
}

func TestValidateUnknownLayoutEnumeratesRegistered(t *testing.T) {
	err := rescq.Options{Layout: "moebius"}.Validate()
	if err == nil {
		t.Fatal("unknown layout validated")
	}
	for _, want := range []string{"moebius", "star", "linear", "compact", "custom"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q should mention %q", err, want)
		}
	}
}
